"""Sharding identity properties.

Two invariants make the shard engine trustworthy as a *transparent*
scale-out of the single protected store:

* **N=1 identity** -- a one-shard sharded database run through the
  router is byte-identical (memory image) and meter-identical (virtual
  cost accounting) to the plain unsharded ``Database`` executing the
  same transactions.  ``shard_capacity(total, 1) == total`` makes the
  layouts comparable; everything else has to follow from the router
  adding zero work on the single-shard fast path.
* **Reshard invariance** -- the same transaction stream applied at any
  shard count folds to the same per-table content digest (an XOR over
  ``fold_words`` of every live record, so it is order- and
  placement-independent), and every shard's audit is clean.
"""

from __future__ import annotations

import shutil

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, DBConfig, Field, FieldType, Schema
from repro.core.codeword import fold_words
from repro.shard import ShardedConfig, ShardedDatabase

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

ACCOUNT_SCHEMA = Schema(
    [
        Field("aid", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)
TABLE_DEFS = [("account", ACCOUNT_SCHEMA, 48, "aid")]
BRANCHES = 6
KEYS = list(range(12))

# Transactions over pre-inserted keys: balance adds and overwrites.
txn_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"), st.sampled_from(KEYS), st.integers(-1000, 1000)
        ),
        st.tuples(
            st.just("update_key"), st.sampled_from(KEYS), st.integers(0, 10_000)
        ),
    ),
    min_size=1,
    max_size=6,
)
scripts = st.lists(txn_ops, min_size=1, max_size=8)


def _to_shard_ops(ops: list[tuple]) -> list[tuple]:
    shard_ops = []
    for kind, key, value in ops:
        if kind == "add":
            shard_ops.append(("add", "account", key, "balance", value))
        else:
            shard_ops.append(("update_key", "account", key, {"balance": value}))
    return shard_ops


def _fresh_sharded(tmp_path, sub: str, n_shards: int) -> ShardedDatabase:
    path = tmp_path / sub
    if path.exists():
        shutil.rmtree(path)
    config = ShardedConfig(
        dir=str(path),
        n_shards=n_shards,
        mode="inproc",
        branches=BRANCHES,
        scheme="data_codeword",
    )
    db = ShardedDatabase.create(config, TABLE_DEFS)
    for key in KEYS:
        db.submit_txn([("insert", "account", {"aid": key, "balance": 100})])
    return db


def _run_sharded(db: ShardedDatabase, script: list[list[tuple]]) -> None:
    for ops in script:
        db.submit_txn(_to_shard_ops(ops))


def _fresh_unsharded(tmp_path, sub: str) -> Database:
    path = tmp_path / sub
    if path.exists():
        shutil.rmtree(path)
    # Mirror ShardedConfig.db_config(0) knob-for-knob so only the
    # routing layer differs between the two executions.
    config = DBConfig(dir=str(path), scheme="data_codeword")
    db = Database(config)
    for name, schema, capacity, key_field in TABLE_DEFS:
        db.create_table(name, schema, capacity, key_field=key_field)
    db.start()
    table = db.table("account")
    # One insert per transaction: the same cadence the sharded side's
    # per-key submit_txn produces, so the WAL/image states stay aligned.
    for key in KEYS:
        txn = db.begin()
        table.insert(txn, {"aid": key, "balance": 100})
        db.commit(txn)
    return db


def _run_unsharded(db: Database, script: list[list[tuple]]) -> None:
    """Exactly ShardCore's transaction semantics, without the router."""
    table = db.table("account")
    for ops in script:
        txn = db.begin()
        for kind, key, value in ops:
            slot = table.lookup(txn, key)
            if kind == "add":
                table.update(txn, slot, {"balance": lambda cur: cur + value})
            else:
                table.update(txn, slot, {"balance": value})
        db.commit(txn)


def _content_digest(db: Database) -> dict[str, int]:
    digests: dict[str, int] = {}
    txn = db.begin()
    try:
        for name, table in db.tables.items():
            acc = 0
            for slot in table.scan_slots(txn):
                acc ^= fold_words(table.read_bytes(txn, slot))
            digests[name] = acc
    finally:
        db.commit(txn)
    return digests


class TestSingleShardIdentity:
    """N=1 through the router == the plain Database, byte for byte."""

    @SLOW
    @given(script=scripts)
    def test_image_and_meter_identical(self, tmp_path, script):
        sharded = _fresh_sharded(tmp_path, "sharded", n_shards=1)
        plain = _fresh_unsharded(tmp_path, "plain")
        try:
            # The single-shard insert path differs from the mirror's only
            # in commit batching, so the *post-script* comparison uses the
            # same per-txn commit cadence on both sides.
            _run_sharded(sharded, script)
            _run_unsharded(plain, script)
            (shard_segments,) = sharded.call_all(("snapshot",))
            assert shard_segments == plain.memory.snapshot_segments()
            (shard_digest,) = sharded.call_all(("content_digest",))
            assert shard_digest == _content_digest(plain)
        finally:
            sharded.close()
            plain.close()

    @SLOW
    @given(script=scripts)
    def test_meter_charges_identical(self, tmp_path, script):
        """The router adds no virtual cost on the single-shard path:
        per-event charge counts after the same script are identical."""
        sharded = _fresh_sharded(tmp_path, "sharded-m", n_shards=1)
        plain = _fresh_unsharded(tmp_path, "plain-m")
        try:
            before_shard = sharded.meters()[0]
            before_plain = plain.meter.snapshot()
            _run_sharded(sharded, script)
            _run_unsharded(plain, script)
            after_shard = sharded.meters()[0]
            after_plain = plain.meter.snapshot()

            def delta(after, before):
                return {
                    event: (
                        counts[0] - before.get(event, (0, 0))[0],
                        counts[1] - before.get(event, (0, 0))[1],
                    )
                    for event, counts in after.items()
                    if counts != before.get(event, (0, 0))
                }

            assert delta(after_shard, before_shard) == delta(
                after_plain, before_plain
            )
        finally:
            sharded.close()
            plain.close()


class TestReshardInvariance:
    """The same content folds to the same digest at any shard count."""

    @SLOW
    @given(script=scripts)
    def test_content_digest_reshard_invariant(self, tmp_path, script):
        digests = []
        balances = []
        for n_shards in (1, 2, 3):
            db = _fresh_sharded(tmp_path, f"n{n_shards}", n_shards=n_shards)
            try:
                _run_sharded(db, script)
                digests.append(db.content_digest())
                balances.append(db.sum_field("account", "balance"))
                audits = db.audit_all()
                assert all(clean for clean, _, _ in audits), (
                    f"audit not clean at n_shards={n_shards}"
                )
            finally:
                db.close()
        assert digests[0] == digests[1] == digests[2]
        assert balances[0] == balances[1] == balances[2]
