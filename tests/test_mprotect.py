"""Simulated MMU: trap semantics and mprotect cost accounting."""

import pytest

from repro.errors import ConfigError, ProtectionFault
from repro.mem.memory import MemoryImage
from repro.mem.mprotect import (
    MprotectCosts,
    PROT_READ,
    PROT_READWRITE,
    SimulatedMMU,
)
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS

COSTS = MprotectCosts(syscall_fixed_ns=1000, per_page_ns=100)


def make_mmu():
    memory = MemoryImage(page_size=4096)
    memory.add_segment("data", 10 * 4096)
    clock = VirtualClock()
    mmu = SimulatedMMU(memory, COSTS, Meter(clock, DEFAULT_COSTS))
    return memory, mmu, clock


class TestTrapSemantics:
    def test_disabled_mmu_never_traps(self):
        memory, mmu, _ = make_mmu()
        mmu.mprotect(0, 4096, PROT_READ)
        memory.write(0, b"ok")  # not enforcing yet

    def test_protected_write_traps_and_is_not_performed(self):
        memory, mmu, _ = make_mmu()
        mmu.enable()
        mmu.mprotect(0, 4096, PROT_READ)
        with pytest.raises(ProtectionFault) as exc:
            memory.write(10, b"nope")
        assert exc.value.page_id == 0
        assert memory.read(10, 4) == b"\x00" * 4

    def test_poke_also_traps(self):
        memory, mmu, _ = make_mmu()
        mmu.enable()
        mmu.mprotect(0, 4096, PROT_READ)
        with pytest.raises(ProtectionFault):
            memory.poke(5, b"wild")
        assert mmu.trap_count == 1

    def test_unprotect_allows_write(self):
        memory, mmu, _ = make_mmu()
        mmu.enable()
        mmu.mprotect(0, 4096, PROT_READ)
        mmu.mprotect(0, 4096, PROT_READWRITE)
        memory.write(0, b"fine")
        assert memory.read(0, 4) == b"fine"

    def test_write_spanning_protected_page_traps(self):
        memory, mmu, _ = make_mmu()
        mmu.enable()
        mmu.mprotect(4096, 4096, PROT_READ)  # page 1 only
        with pytest.raises(ProtectionFault):
            memory.write(4090, b"0123456789")  # spans pages 0-1

    def test_restore_bypasses_mmu(self):
        memory, mmu, _ = make_mmu()
        mmu.enable()
        mmu.mprotect(0, 4096, PROT_READ)
        memory.restore(0, b"recovery")  # checkpoint load / redo path
        assert memory.read(0, 8) == b"recovery"

    def test_reads_never_trap(self):
        memory, mmu, _ = make_mmu()
        mmu.enable()
        mmu.mprotect(0, 4096, PROT_READ)
        assert memory.read(0, 8) == b"\x00" * 8


class TestCosts:
    def test_single_page_call_cost(self):
        _, mmu, clock = make_mmu()
        mmu.mprotect(0, 4096, PROT_READ)
        assert clock.now_ns == COSTS.call_ns(1) == 1100

    def test_multi_page_call_cost(self):
        _, mmu, clock = make_mmu()
        mmu.mprotect(0, 3 * 4096, PROT_READ)
        assert clock.now_ns == COSTS.call_ns(3)

    def test_cost_charged_even_if_bits_unchanged(self):
        _, mmu, clock = make_mmu()
        mmu.mprotect(0, 4096, PROT_READWRITE)  # already rw
        assert clock.now_ns == COSTS.call_ns(1)

    def test_call_count(self):
        _, mmu, _ = make_mmu()
        mmu.mprotect(0, 4096, PROT_READ)
        mmu.mprotect(0, 4096, PROT_READWRITE)
        assert mmu.call_count == 2


class TestProtectPages:
    def test_contiguous_run_is_one_syscall(self):
        _, mmu, _ = make_mmu()
        mmu.protect_pages(range(0, 5), PROT_READ)
        assert mmu.call_count == 1
        assert mmu.protected_page_count == 5

    def test_disjoint_runs_are_separate_syscalls(self):
        _, mmu, _ = make_mmu()
        mmu.protect_pages([0, 1, 5, 6, 8], PROT_READ)
        assert mmu.call_count == 3
        assert mmu.protected_page_count == 5

    def test_unknown_protection_rejected(self):
        _, mmu, _ = make_mmu()
        with pytest.raises(ConfigError):
            mmu.mprotect(0, 4096, "rwx")

    def test_is_protected(self):
        _, mmu, _ = make_mmu()
        mmu.mprotect(4096, 4096, PROT_READ)
        assert mmu.is_protected(1)
        assert not mmu.is_protected(0)
