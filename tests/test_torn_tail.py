"""Torn-tail tolerance: a crash mid-flush must not poison the log."""

import os

import pytest

from repro import Database, tear_log_tail
from repro.errors import LogError
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.wal.records import TxnCommitRecord
from repro.wal.system_log import SystemLog

from tests.conftest import insert_accounts


def make_log(tmp_path):
    return SystemLog(str(tmp_path / "sys.log"), Meter(VirtualClock(), DEFAULT_COSTS))


class TestScanTolerance:
    def test_torn_record_stops_scan_cleanly(self, tmp_path):
        log = make_log(tmp_path)
        for i in range(5):
            log.append(TxnCommitRecord(i))
        log.flush()
        tear_log_tail(log.path, cut=3)
        records = list(log.scan())
        assert [lsn for lsn, _ in records] == [0, 1, 2, 3]
        assert log.torn_tail_detected
        log.close()

    def test_strict_scan_raises(self, tmp_path):
        log = make_log(tmp_path)
        log.append(TxnCommitRecord(1))
        log.flush()
        tear_log_tail(log.path, cut=2)
        with pytest.raises(LogError):
            list(log.scan(strict=True))
        log.close()

    def test_crc_damaged_tail_record(self, tmp_path):
        log = make_log(tmp_path)
        log.append(TxnCommitRecord(1))
        log.append(TxnCommitRecord(2))
        log.flush()
        size = os.path.getsize(log.path)
        with open(log.path, "r+b") as handle:
            handle.seek(size - 6)
            handle.write(b"\xff")  # damage the last record's body
        records = list(log.scan())
        assert [lsn for lsn, _ in records] == [0]
        assert log.torn_tail_detected
        log.close()

    def test_clean_log_sets_no_flag(self, tmp_path):
        log = make_log(tmp_path)
        log.append(TxnCommitRecord(1))
        log.flush()
        list(log.scan())
        assert not log.torn_tail_detected
        log.close()

    def test_truncate_torn_tail(self, tmp_path):
        log = make_log(tmp_path)
        for i in range(3):
            log.append(TxnCommitRecord(i))
        log.flush()
        tear_log_tail(log.path, cut=5)
        list(log.scan())
        assert log.truncate_torn_tail()
        records = list(log.scan())
        assert [lsn for lsn, _ in records] == [0, 1]
        assert not log.torn_tail_detected
        # New appends land cleanly after truncation.
        log.next_lsn = 2
        log.append(TxnCommitRecord(99))
        log.flush()
        assert [lsn for lsn, _ in log.scan()] == [0, 1, 2]
        log.close()

    def test_truncate_noop_when_clean(self, tmp_path):
        log = make_log(tmp_path)
        log.append(TxnCommitRecord(1))
        log.flush()
        list(log.scan())
        assert not log.truncate_torn_tail()
        log.close()


class TestRecoveryWithTornTail:
    def test_recovery_survives_torn_flush(self, db):
        slots = insert_accounts(db, 3)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 42})
        db.commit(txn)
        db.crash()
        tear_log_tail(db.system_log.path, cut=7)  # the crash tore the last flush
        db2, report = Database.recover(db.config)
        # The torn record was part of the last commit's flush; recovery
        # comes up consistent (possibly without that commit) and usable.
        txn = db2.begin()
        balance = db2.table("acct").read(txn, slots[0])["balance"]
        assert balance in (100, 42)
        db2.commit(txn)
        db2.checkpoint()
        db2.crash()
        db3, _ = Database.recover(db2.config)
        db3.close()


class TestTornFlushInjection:
    """The fault injector's ``torn_flush`` drives the same detect ->
    truncate -> re-flush cycle end to end through a real database."""

    def test_torn_flush_detected_and_repaired(self, db):
        from repro import FaultInjector

        slots = insert_accounts(db, 3)
        for value in (7, 8):
            txn = db.begin()
            db.table("acct").update(txn, slots[0], {"balance": value})
            db.commit(txn)
        db.crash()
        injector = FaultInjector(db, seed=5)
        event = injector.torn_flush()
        assert event.kind == "torn_flush"
        assert 1 <= len(event.old) <= 16  # the bytes that never hit disk

        log = SystemLog(db.system_log.path, db.meter)
        survivors = list(log.scan())
        assert log.torn_tail_detected  # the tear is visible via frame CRC
        assert log.truncate_torn_tail()
        # After truncation, a strict scan accounts for every byte and new
        # appends round-trip cleanly after the surviving prefix.
        assert list(log.scan(strict=True)) == survivors
        log.next_lsn = survivors[-1][0] + 1
        log.append(TxnCommitRecord(999))
        log.flush()
        full = list(log.scan(strict=True))
        assert full[:-1] == survivors
        assert full[-1][1] == TxnCommitRecord(999)
        assert log.stable_record_count == len(survivors) + 1
        log.close()

    def test_torn_flush_cut_validation(self, db):
        from repro import FaultInjector
        from repro.errors import ConfigError

        insert_accounts(db, 1)
        db.system_log.flush()
        injector = FaultInjector(db, seed=1)
        with pytest.raises(ConfigError):
            injector.torn_flush(cut=0)
        with pytest.raises(ConfigError):
            injector.torn_flush(cut=os.path.getsize(db.system_log.path) + 1)

    def test_recovery_after_injected_torn_flush(self, db):
        from repro import FaultInjector

        slots = insert_accounts(db, 3)
        db.checkpoint()
        txn = db.begin()
        db.table("acct").update(txn, slots[1], {"balance": 555})
        db.commit(txn)
        db.crash()
        FaultInjector(db, seed=9).torn_flush(cut=3)  # tear the commit's flush
        db2, _report = Database.recover(db.config)
        txn = db2.begin()
        balance = db2.table("acct").read(txn, slots[1])["balance"]
        db2.commit(txn)
        # The torn flush lost the commit record: the update is rolled
        # back, and the database is otherwise intact and usable.
        assert balance == 100
        result = db2.checkpoint()
        assert result.certified
        db2.close()
