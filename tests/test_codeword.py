"""XOR codeword arithmetic: unit and property-based tests."""

import struct

from hypothesis import given, strategies as st

from repro.core.codeword import fold_words, positioned_fold, word_count


class TestFoldWords:
    def test_empty_is_zero(self):
        assert fold_words(b"") == 0

    def test_single_word(self):
        assert fold_words(struct.pack("<I", 0xDEADBEEF)) == 0xDEADBEEF

    def test_two_equal_words_cancel(self):
        word = struct.pack("<I", 0x12345678)
        assert fold_words(word + word) == 0

    def test_unaligned_length_zero_padded(self):
        # b"\x01" folds as the word 0x00000001
        assert fold_words(b"\x01") == 1
        assert fold_words(b"\x00\x00\x00\x00\x01") == 1

    def test_known_xor(self):
        data = struct.pack("<II", 0xFF00FF00, 0x00FF00FF)
        assert fold_words(data) == 0xFFFFFFFF

    def test_numpy_and_loop_paths_agree(self):
        # 256 bytes triggers the numpy path; build the same fold manually.
        data = bytes(range(256))
        expected = 0
        for (word,) in struct.iter_unpack("<I", data):
            expected ^= word
        assert fold_words(data) == expected

    def test_memoryview_input_no_copy_path(self):
        """Buffers (memoryview over bytearray) fold identically to bytes."""
        backing = bytearray(range(200)) + bytearray(b"\x07" * 3)  # ragged tail
        view = memoryview(backing)
        assert fold_words(view) == fold_words(bytes(backing))
        assert fold_words(view[:37]) == fold_words(bytes(backing[:37]))

    @given(st.binary(max_size=600))
    def test_ragged_tail_equals_explicit_padding(self, data):
        """The tail-word fold must equal the old pad-the-whole-buffer fold."""
        padded = data + b"\x00" * (-len(data) % 4)
        assert fold_words(data) == fold_words(padded)

    @given(st.binary(max_size=600))
    def test_fold_is_self_inverse_under_concat(self, data):
        """Folding data twice (word-aligned concat) cancels out."""
        if len(data) % 4:
            data = data + b"\x00" * (4 - len(data) % 4)
        assert fold_words(data + data) == 0

    @given(st.binary(max_size=600), st.binary(max_size=600))
    def test_fold_concat_is_xor_of_folds_when_aligned(self, a, b):
        if len(a) % 4:
            a = a + b"\x00" * (4 - len(a) % 4)
        assert fold_words(a + b) == fold_words(a) ^ fold_words(b)


class TestPositionedFold:
    def test_aligned_matches_plain_fold(self):
        data = b"\x01\x02\x03\x04\x05"
        assert positioned_fold(100, data) == fold_words(data)

    def test_offset_shifts_byte_within_word(self):
        assert positioned_fold(2, b"\xab") == 0xAB0000

    @given(st.integers(min_value=0, max_value=1 << 20), st.binary(min_size=1, max_size=64))
    def test_positioned_fold_matches_in_context(self, address, data):
        """positioned_fold == fold of the word-aligned window with zeros outside."""
        lead = address % 4
        window = b"\x00" * lead + data
        assert positioned_fold(address, data) == fold_words(window)

    @given(
        st.integers(min_value=0, max_value=255),
        st.binary(min_size=8, max_size=64),
        st.binary(min_size=1, max_size=16),
    )
    def test_incremental_update_matches_recompute(self, offset, region, patch):
        """cw ^= pfold(old) ^ pfold(new) equals recomputing the fold."""
        if offset + len(patch) > len(region):
            offset = max(0, len(region) - len(patch))
        if len(region) % 4:
            region = region + b"\x00" * (4 - len(region) % 4)
        old_slice = region[offset : offset + len(patch)]
        patched = region[:offset] + patch + region[offset + len(patch) :]
        incremental = (
            fold_words(region)
            ^ positioned_fold(offset, old_slice)
            ^ positioned_fold(offset, patch)
        )
        assert incremental == fold_words(patched)


class TestWordCount:
    def test_exact_words(self):
        assert word_count(8) == 2

    def test_rounds_up(self):
        assert word_count(9) == 3
        assert word_count(1) == 1

    def test_zero(self):
        assert word_count(0) == 0
