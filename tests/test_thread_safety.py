"""Thread-safety hardening of shared structures.

These stress tests drive the lock table, the system-log tail and the
meter from many threads at once and assert *exact* invariants (no lost
grants, dense LSNs, exact counters).  They fail on the pre-hardening
code -- an unsynchronized ``grants[:] = [...]`` rebuild loses concurrent
appends, and unguarded ``next_lsn += 1`` duplicates LSNs -- and pin the
mutexes added for concurrent serving.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.txn.locks import LockManager, LockMode
from repro.wal.records import TxnBeginRecord
from repro.wal.system_log import SystemLog

THREADS = 8
ROUNDS = 400


@pytest.fixture(autouse=True)
def aggressive_thread_switching():
    """Shrink the GIL switch interval so read-modify-write races that
    would hide behind CPython's default 5 ms quantum actually fire."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def run_threads(worker) -> None:
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "stress worker deadlocked"


class TestLockManagerUnderThreads:
    def test_no_grants_lost_or_leaked(self):
        """Shared acquires and releases on overlapping keys, many threads.

        Unsynchronized, the ``release_all`` list rebuild races concurrent
        ``acquire`` appends: a grant appended between snapshot and
        slice-assign vanishes, leaving the loser's ``release_all`` with
        nothing to release and the table with a stale grant.  With the
        mutex, every acquire is matched by exactly one release and the
        table drains to empty.
        """
        locks = LockManager()
        barrier = threading.Barrier(THREADS)
        failures: list[str] = []

        def worker(thread_id: int) -> None:
            txn_id = thread_id + 1
            barrier.wait()
            for i in range(ROUNDS):
                # Overlapping SHARED keys force every thread into the
                # same grant lists; private keys exercise op release.
                locks.acquire(txn_id, f"shared:{i % 4}", LockMode.SHARED)
                locks.acquire(txn_id, f"mine:{txn_id}", LockMode.EXCLUSIVE,
                              duration="op", op_id=i)
                if not locks.holds(txn_id, f"shared:{i % 4}"):
                    failures.append(f"txn {txn_id} lost shared:{i % 4}")
                locks.release_operation(txn_id, i)
                locks.release_all(txn_id)
                if locks.locks_held(txn_id):
                    failures.append(f"txn {txn_id} still holds after release_all")

        run_threads(worker)
        assert failures == []
        assert locks.acquire_count == THREADS * ROUNDS * 2
        assert locks._table == {}
        assert getattr(locks, "_txn_keys", {}) == {}

    def test_conflicts_are_detected_atomically(self):
        """Exclusive acquires on one key from many threads: exactly one
        winner at a time, and the check-then-grant is atomic (two threads
        never both win)."""
        locks = LockManager()
        holders: set[int] = set()
        overlap: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(thread_id: int) -> None:
            from repro.errors import LockError

            txn_id = thread_id + 1
            barrier.wait()
            for _ in range(ROUNDS):
                try:
                    locks.acquire(txn_id, "hot", LockMode.EXCLUSIVE)
                except LockError:
                    continue
                holders.add(txn_id)
                if len(holders) > 1:
                    overlap.append(f"{holders}")
                holders.discard(txn_id)
                locks.release_all(txn_id)

        run_threads(worker)
        assert overlap == []
        assert locks._table == {}


class TestSystemLogUnderThreads:
    def test_concurrent_appends_assign_dense_unique_lsns(self, tmp_path):
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        meter.enable_thread_safety()
        log = SystemLog(str(tmp_path / "stress.log"), meter)
        barrier = threading.Barrier(THREADS)

        def worker(thread_id: int) -> None:
            barrier.wait()
            for i in range(ROUNDS):
                if i % 3 == 0:
                    log.extend([TxnBeginRecord(thread_id, False)] * 2)
                else:
                    log.append(TxnBeginRecord(thread_id, False))

        run_threads(worker)
        per_thread = (ROUNDS - ROUNDS // 3 - (1 if ROUNDS % 3 else 0)) + 2 * (
            ROUNDS // 3 + (1 if ROUNDS % 3 else 0)
        )
        total = THREADS * per_thread
        assert log.next_lsn == total
        lsns = [lsn for lsn, _record in log.tail]
        assert len(lsns) == total
        assert sorted(lsns) == list(range(total))  # dense, no duplicates
        assert meter.counts["log_record"] == total
        log.flush()
        assert log.stable_record_count == total
        log.close()

    def test_appends_racing_a_flush_ride_the_next_flush(self, tmp_path):
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        meter.enable_thread_safety()
        log = SystemLog(str(tmp_path / "raceflush.log"), meter)
        stop = threading.Event()
        appended = [0]

        def appender() -> None:
            while not stop.is_set():
                log.append(TxnBeginRecord(1, False))
                appended[0] += 1

        thread = threading.Thread(target=appender)
        thread.start()
        for _ in range(50):
            log.flush()
        stop.set()
        thread.join(timeout=60)
        log.flush()
        assert log.tail == []
        assert log.stable_record_count == appended[0]
        assert log.end_of_stable_lsn == appended[0]
        records = sum(1 for _ in log.scan(strict=True))
        assert records == appended[0]
        log.close()


class TestMeterUnderThreads:
    def test_charges_are_exact_with_thread_safety_enabled(self):
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        meter.enable_thread_safety()
        barrier = threading.Barrier(THREADS)

        def worker(_thread_id: int) -> None:
            barrier.wait()
            for _ in range(ROUNDS):
                meter.charge("log_record")
                meter.charge("log_byte", 3)

        run_threads(worker)
        total = THREADS * ROUNDS
        assert meter.counts["log_record"] == total
        assert meter.counts["log_byte"] == total * 3
        expected_ns = (
            total * DEFAULT_COSTS.unit_ns("log_record")
            + total * 3 * DEFAULT_COSTS.unit_ns("log_byte")
        )
        assert meter.clock.now_ns == expected_ns
