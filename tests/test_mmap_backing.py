"""mmap-backed memory images: identity with heap backing, wild-write
visibility, and crash-safety of checkpoint propagation.

``DBConfig(image_backing="mmap")`` swaps the MemoryImage's segment
buffers for file-backed mmaps under ``{dir}/image/`` without changing a
single call site above the Segment API.  These tests pin the contract:

* a workload run over mmap is byte- and meter-identical to heap;
* wild writes (``memory.poke``) land in the backing file's bytes and are
  still caught by the codeword audit -- the backing is transparent to
  the protection schemes;
* checkpoint images written by file-to-file propagation are identical to
  the heap writer's, and a crash at *any* checkpoint or recovery step
  leaves the previous anchor usable and recovery byte-identical to a
  heap twin crashed at the same point.
"""

from __future__ import annotations

import os

import pytest

from repro import CrashPointRegistry, Database, DBConfig, Field, FieldType, Schema
from repro.errors import SimulatedCrash
from repro.faults.campaign import CampaignSpec, run_campaign
from repro.faults.crashpoints import RECOVERY_CRASH_POINTS
from repro.wal.records import LogicalUndo

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)

CHECKPOINT_CRASH_POINTS = (
    "checkpoint.pre_image",
    "checkpoint.after_image",
    "checkpoint.after_meta",
    "checkpoint.pre_anchor",
    "checkpoint.after_anchor",
)


def _make_db(dirname: str, **config_kwargs) -> Database:
    config = DBConfig(
        dir=dirname,
        scheme="data_cw",
        scheme_params={"region_size": 64},
        **config_kwargs,
    )
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    return db


def _seed_accounts(db: Database, count: int = 24) -> dict[int, int]:
    table = db.table("acct")
    txn = db.begin()
    slots = {
        i: table.insert(txn, {"id": i, "balance": 1000 + i, "name": f"a{i}"})
        for i in range(count)
    }
    db.commit(txn)
    return slots


def _apply_updates(db: Database, slots: dict[int, int], spread: int) -> None:
    table = db.table("acct")
    txn = db.begin()
    for i, slot in slots.items():
        table.update(txn, slot, {"balance": 5000 + spread * i})
    db.commit(txn)


def _balances(db: Database, slots: dict[int, int]) -> dict[int, int]:
    table = db.table("acct")
    txn = db.begin()
    out = {i: table.read(txn, slot)["balance"] for i, slot in slots.items()}
    db.commit(txn)
    return out


class TestBackingIdentity:
    def test_workload_is_byte_and_meter_identical(self, tmp_path):
        dbs = {
            backing: _make_db(str(tmp_path / backing), image_backing=backing)
            for backing in ("heap", "mmap")
        }
        states = {}
        for backing, db in dbs.items():
            slots = _seed_accounts(db)
            _apply_updates(db, slots, spread=3)
            db.checkpoint()
            _apply_updates(db, slots, spread=7)
            report = db.audit()
            assert report.clean
            states[backing] = (
                db.memory.snapshot_segments(),
                dict(db.meter.counts),
                db.meter.clock.now_ns,
                _balances(db, slots),
            )
        assert states["mmap"] == states["heap"]
        for db in dbs.values():
            db.close()

    def test_segment_files_exist_and_match_memory(self, tmp_path):
        db = _make_db(str(tmp_path / "db"), image_backing="mmap")
        slots = _seed_accounts(db)
        _apply_updates(db, slots, spread=2)
        db.memory.flush_backing()
        image_dir = os.path.join(db.config.dir, "image")
        for name, snapshot in db.memory.snapshot_segments().items():
            path = os.path.join(image_dir, f"{name}.seg")
            assert os.path.exists(path), path
            with open(path, "rb") as fh:
                assert fh.read() == snapshot, name
        db.close()

    def test_custom_image_path(self, tmp_path):
        backing_dir = str(tmp_path / "elsewhere")
        db = _make_db(
            str(tmp_path / "db"), image_backing="mmap", image_path=backing_dir
        )
        _seed_accounts(db)
        db.memory.flush_backing()
        assert os.path.exists(os.path.join(backing_dir, "acct.data.seg"))
        db.close()


class TestWildWritesInMmap:
    def test_poke_lands_in_backing_file_and_audit_catches_it(self, tmp_path):
        db = _make_db(str(tmp_path / "db"), image_backing="mmap")
        slots = _seed_accounts(db)
        address = db.table("acct").record_address(slots[3]) + 8
        db.memory.poke(address, b"\xde\xad\xbe\xef\xde\xad\xbe\xef")
        db.memory.flush_backing()
        # The wild write went through the mmap: the file holds the garbage.
        seg = db.memory.segment_for(address)
        with open(
            os.path.join(db.config.dir, "image", f"{seg.name}.seg"), "rb"
        ) as fh:
            raw = fh.read()
        offset = address - seg.base
        assert raw[offset : offset + 8] == b"\xde\xad\xbe\xef\xde\xad\xbe\xef"
        # ... and the codeword audit convicts the region all the same.
        report = db.audit()
        assert not report.clean
        assert any(
            start <= address < start + length
            for start, length in report.corrupt_ranges
        )
        db.close()


class TestCheckpointPropagation:
    def test_checkpoint_image_identical_heap_vs_mmap(self, tmp_path):
        images = {}
        for backing in ("heap", "mmap"):
            db = _make_db(str(tmp_path / backing), image_backing=backing)
            slots = _seed_accounts(db)
            _apply_updates(db, slots, spread=5)
            result = db.checkpoint()
            assert result.certified
            with open(
                os.path.join(db.config.dir, f"ckpt_{result.image}.img"), "rb"
            ) as fh:
                images[backing] = (result.image, fh.read())
            db.close()
        assert images["mmap"] == images["heap"]

    @pytest.mark.parametrize("point", CHECKPOINT_CRASH_POINTS)
    def test_crash_during_checkpoint_keeps_usable_anchor(self, tmp_path, point):
        recovered = {}
        for backing in ("heap", "mmap"):
            db = _make_db(str(tmp_path / f"{backing}-{point}"), image_backing=backing)
            slots = _seed_accounts(db)
            _apply_updates(db, slots, spread=3)
            db.checkpoint()
            anchor_before = db.checkpointer.read_anchor()
            _apply_updates(db, slots, spread=9)
            db.crashpoints.arm(point)
            with pytest.raises(SimulatedCrash):
                db.checkpoint()
            anchor_after = db.checkpointer.read_anchor()
            if point == "checkpoint.after_anchor":
                # The new anchor was fully written before the crash.
                assert anchor_after["image"] != anchor_before["image"]
            else:
                # The previous anchor is untouched and still authoritative.
                assert anchor_after == anchor_before
            db.crash()
            db2, _report = Database.recover(db.config)
            recovered[backing] = (
                db2.memory.snapshot_segments(),
                _balances(db2, slots),
            )
            assert db2.audit().clean
            db2.close()
        # mmap recovery converges to the byte-identical heap state.
        assert recovered["mmap"] == recovered["heap"]

    @pytest.mark.parametrize("point", RECOVERY_CRASH_POINTS)
    def test_crash_mid_recovery_with_mmap_converges(self, tmp_path, point):
        recovered = {}
        for backing in ("heap", "mmap"):
            db = _make_db(str(tmp_path / f"{backing}-{point}"), image_backing=backing)
            slots = _seed_accounts(db)
            _apply_updates(db, slots, spread=3)
            db.checkpoint()
            _apply_updates(db, slots, spread=9)
            # Leave a transaction in flight so undo has real work to do.
            txn = db.begin()
            mgr = db.manager
            mgr.begin_operation(txn, "acct:open")
            address = db.table("acct").record_address(slots[0]) + 8
            mgr.update(txn, address, (31337).to_bytes(8, "little"))
            mgr.commit_operation(txn, LogicalUndo("noop"))
            db.checkpoint()
            db.crash()
            # First recovery attempt dies at ``point``; the re-run must
            # converge from the (possibly half-recovered) mmap files.
            registry = CrashPointRegistry().arm(point)
            with pytest.raises(SimulatedCrash):
                Database.recover(db.config, crashpoints=registry)
            db2, _report = Database.recover(db.config)
            recovered[backing] = (
                db2.memory.snapshot_segments(),
                _balances(db2, slots),
            )
            assert db2.audit().clean
            db2.close()
        assert recovered["mmap"] == recovered["heap"]


class TestMmapFaultCampaign:
    def test_small_campaign_zero_false_negatives(self, tmp_path):
        spec = CampaignSpec(
            seeds=(1,),
            schemes=("data_codeword",),
            schedules_per_config=6,
            ops_per_schedule=16,
            image_backing="mmap",
        )
        result = run_campaign(spec, str(tmp_path / "campaign"))
        assert result.errors == []
        assert result.false_negatives == []
        assert result.garbage_served == []
