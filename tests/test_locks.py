"""Logical lock manager: modes, durations, conflicts."""

import pytest

from repro.errors import LockError
from repro.txn.locks import LockManager, LockMode

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


class TestCompatibility:
    def test_shared_shared_compatible(self):
        locks = LockManager()
        locks.acquire(1, "a", S)
        locks.acquire(2, "a", S)
        assert locks.holds(1, "a") and locks.holds(2, "a")

    def test_shared_exclusive_conflict(self):
        locks = LockManager()
        locks.acquire(1, "a", S)
        with pytest.raises(LockError):
            locks.acquire(2, "a", X)

    def test_exclusive_exclusive_conflict(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        with pytest.raises(LockError):
            locks.acquire(2, "a", X)

    def test_exclusive_shared_conflict(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        with pytest.raises(LockError):
            locks.acquire(2, "a", S)

    def test_different_keys_never_conflict(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        locks.acquire(2, "b", X)

    def test_reacquire_same_txn_ok(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        locks.acquire(1, "a", X)
        locks.acquire(1, "a", S)

    def test_upgrade_same_txn(self):
        locks = LockManager()
        locks.acquire(1, "a", S)
        locks.acquire(1, "a", X)
        assert locks.holds(1, "a", X)

    def test_would_conflict(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        assert locks.would_conflict(2, "a", S)
        assert not locks.would_conflict(1, "a", X)
        assert not locks.would_conflict(2, "b", X)


class TestDurations:
    def test_op_locks_released_at_operation_end(self):
        locks = LockManager()
        locks.acquire(1, "alloc", X, duration="op", op_id=10)
        locks.acquire(1, "rec", X, duration="txn")
        locks.release_operation(1, 10)
        assert not locks.holds(1, "alloc")
        assert locks.holds(1, "rec")

    def test_op_lock_escalates_to_txn_duration(self):
        locks = LockManager()
        locks.acquire(1, "k", X, duration="op", op_id=10)
        locks.acquire(1, "k", X, duration="txn")
        locks.release_operation(1, 10)
        assert locks.holds(1, "k")

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        locks.acquire(1, "b", S)
        locks.acquire(2, "b", S)
        locks.release_all(1)
        assert locks.locks_held(1) == []
        assert locks.holds(2, "b")

    def test_bad_duration_rejected(self):
        with pytest.raises(LockError):
            LockManager().acquire(1, "a", X, duration="forever")

    def test_locks_held_listing(self):
        locks = LockManager()
        locks.acquire(1, "a", X)
        locks.acquire(1, "b", S)
        assert sorted(locks.locks_held(1)) == ["a", "b"]

    def test_acquire_count(self):
        locks = LockManager()
        locks.acquire(1, "a", S)
        locks.acquire(1, "a", S)
        assert locks.acquire_count == 2
