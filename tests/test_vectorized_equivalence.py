"""Vectorized audit kernel == scalar per-region fold, property-tested.

The batch kernel (`fold_all` / `fold_range` / vectorized
`scan_mismatches`) must be byte-identical to the seed's scalar
read-and-fold loop across every geometry: ragged image tails, regions
larger than segments, regions straddling segment boundaries, and
arbitrary wild-write corruption.  The cost model must also be untouched:
a batch audit charges exactly the events the per-region loop charges.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codeword import fold_words
from repro.core.regions import CodewordTable
from repro.core.schemes import make_scheme
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS

# Tiny pages so small segments produce regions that straddle boundaries.
PAGE = 8

segment_sizes = st.lists(st.integers(min_value=1, max_value=96), min_size=1, max_size=5)
region_sizes = st.integers(min_value=2, max_value=24).map(lambda k: 4 * k)
pokes = st.lists(
    st.tuples(st.integers(min_value=0), st.binary(min_size=1, max_size=12)),
    max_size=6,
)


def build_image(sizes: list[int], fill_seed: int) -> MemoryImage:
    memory = MemoryImage(page_size=PAGE)
    for index, size in enumerate(sizes):
        memory.add_segment(f"s{index}", size, kind="data" if index % 2 else "control")
    memory.restore(0, bytes((i * fill_seed + 13) % 256 for i in range(memory.size)))
    return memory


def scalar_reference(table: CodewordTable) -> list[int]:
    """Ground truth built only from read() + fold_words, no kernel code."""
    mismatches = []
    for region_id in range(table.region_count):
        start, length = table.region_bounds(region_id)
        if fold_words(table.memory.read(start, length)) != table.stored(region_id):
            mismatches.append(region_id)
    return mismatches


class TestKernelEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        sizes=segment_sizes,
        region_size=region_sizes,
        fill_seed=st.integers(min_value=1, max_value=251),
        corruption=pokes,
    )
    def test_scan_and_fold_match_scalar(self, sizes, region_size, fill_seed, corruption):
        memory = build_image(sizes, fill_seed)
        table = CodewordTable(memory, region_size)
        table.rebuild_all()
        for address, payload in corruption:
            address %= memory.size
            payload = payload[: memory.size - address]
            if payload:
                memory.poke(address, payload)

        expected = scalar_reference(table)

        # Full vectorized scan.
        assert table.scan_mismatches() == expected
        # fold_all equals per-region scalar folds.
        folds = table.fold_all()
        for region_id in range(table.region_count):
            assert int(folds[region_id]) == table.compute_scalar(region_id)
        # Every contiguous subrange agrees too (the incremental auditor's
        # access pattern).
        count = table.region_count
        for start, stop in ((0, count), (0, count // 2), (count // 2, count), (1, count)):
            if stop < start:
                continue
            assert table.scan_mismatches(range(start, stop)) == [
                r for r in expected if start <= r < stop
            ]
        # Non-range iterables keep working through the scalar path.
        assert table.scan_mismatches(iter(expected)) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=segment_sizes,
        region_size=region_sizes,
        fill_seed=st.integers(min_value=1, max_value=251),
    )
    def test_rebuild_all_is_clean(self, sizes, region_size, fill_seed):
        memory = build_image(sizes, fill_seed)
        table = CodewordTable(memory, region_size)
        table.rebuild_all()
        assert table.scan_mismatches() == []
        assert scalar_reference(table) == []


class TestCostModelInvariance:
    """Batch audits must charge the exact events the scalar loop charges."""

    @pytest.mark.parametrize("region_size", [64, 512, 4096])
    def test_audit_regions_charges_match_scalar_loop(self, region_size):
        def run(force_scalar: bool):
            memory = MemoryImage(page_size=PAGE)
            memory.add_segment("a", 3000)
            memory.add_segment("b", 1100)
            scheme = make_scheme("data_cw", region_size=region_size)
            meter = Meter(VirtualClock(), DEFAULT_COSTS)
            scheme.attach(memory, meter)
            scheme.startup()
            memory.poke(70, b"\x55\x66\x77")
            if force_scalar:
                # Holding any protection latch disables the batch path.
                scheme.protection_latches.latch(10**9).acquire("X")
            corrupt = scheme.audit_regions()
            return corrupt, meter.snapshot(), meter.clock.now_ns

        batch_corrupt, batch_events, batch_ns = run(force_scalar=False)
        scalar_corrupt, scalar_events, scalar_ns = run(force_scalar=True)
        assert batch_corrupt == scalar_corrupt != []
        assert batch_events == scalar_events
        assert batch_ns == scalar_ns

    def test_ragged_tail_word_accounting(self):
        """The bulk cw_check_word charge must clamp the final region."""
        memory = MemoryImage(page_size=8)
        memory.add_segment("a", 72)  # 72 bytes -> ragged 8-byte tail at 64B
        scheme = make_scheme("data_cw", region_size=64)
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        scheme.attach(memory, meter)
        scheme.startup()
        scheme.audit_regions()
        # Region 0 folds 16 words, region 1 only the 2 words that exist.
        assert meter.counts["cw_check_word"] == 16 + 2
        assert meter.counts["cw_check_fixed"] == 2
        assert meter.counts["latch_pair"] == 2


def test_view_backed_compute_equals_copying_fold():
    """compute() (view fast path) == compute_scalar() (copying read)."""
    memory = MemoryImage(page_size=8)
    memory.add_segment("a", 40)
    memory.add_segment("b", 24)
    memory.restore(0, bytes(range(64)))
    table = CodewordTable(memory, 16)
    for region_id in range(table.region_count):
        assert table.compute(region_id) == table.compute_scalar(region_id)
    # A region spanning the segment boundary exercises the read() fallback
    # inside compute(): with 16-byte regions the boundary at 40 sits inside
    # region 2.
    assert memory.view(*table.region_bounds(2)) is None


def test_codewords_dtype_stays_uint32():
    memory = MemoryImage(page_size=8)
    memory.add_segment("a", 64)
    table = CodewordTable(memory, 16)
    table.rebuild_all()
    assert table.fold_all().dtype == np.uint32
    assert table._codewords.dtype == np.uint32
