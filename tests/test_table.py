"""Table operations: CRUD, indexes, logical undo symmetry."""

import pytest

from repro.errors import ConfigError, LockError, TransactionError

from tests.conftest import insert_accounts


class TestInsert:
    def test_insert_returns_slot_and_indexes(self, db):
        table = db.table("acct")
        txn = db.begin()
        slot = table.insert(txn, {"id": 9, "balance": 10, "name": "x"})
        assert table.lookup(txn, 9) == slot
        db.commit(txn)

    def test_row_count(self, db):
        insert_accounts(db, 7)
        txn = db.begin()
        assert db.table("acct").row_count(txn) == 7
        db.commit(txn)

    def test_capacity_exhaustion_rolls_back_operation(self, db_factory):
        db = db_factory(capacity=4)
        insert_accounts(db, 4)
        table = db.table("acct")
        txn = db.begin()
        from repro.errors import OutOfSpaceError

        with pytest.raises(OutOfSpaceError):
            table.insert(txn, {"id": 99})
        db.commit(txn)  # txn still healthy; op rolled back
        txn = db.begin()
        assert table.row_count(txn) == 4
        db.commit(txn)


class TestRead:
    def test_read_decodes_fields(self, db):
        slots = insert_accounts(db, 2)
        txn = db.begin()
        row = db.table("acct").read(txn, slots[1])
        assert row == {"id": 1, "balance": 100, "name": b"acct1"}
        db.commit(txn)

    def test_read_unallocated_slot_rejected(self, db):
        txn = db.begin()
        with pytest.raises(ConfigError):
            db.table("acct").read(txn, 5)
        db.abort(txn)

    def test_lookup_missing_key(self, db):
        insert_accounts(db, 2)
        txn = db.begin()
        assert db.table("acct").lookup(txn, 999) is None
        db.commit(txn)

    def test_scan_slots(self, db):
        slots = insert_accounts(db, 5)
        txn = db.begin()
        assert set(db.table("acct").scan_slots(txn)) == set(slots.values())
        db.commit(txn)


class TestUpdate:
    def test_update_single_field(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 42})
        row = table.read(txn, slots[0])
        assert row["balance"] == 42
        assert row["name"] == b"acct0"  # untouched fields intact
        db.commit(txn)

    def test_update_multiple_fields(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 1, "name": "renamed"})
        row = table.read(txn, slots[0])
        assert (row["balance"], row["name"]) == (1, b"renamed")
        db.commit(txn)

    def test_update_with_callable(self, db):
        slots = insert_accounts(db, 1, balance=10)
        table = db.table("acct")
        txn = db.begin()
        table.update(txn, slots[0], {"balance": lambda b: b * 3})
        assert table.read(txn, slots[0])["balance"] == 30
        db.commit(txn)

    def test_update_no_fields_rejected(self, db):
        slots = insert_accounts(db, 1)
        txn = db.begin()
        with pytest.raises(TransactionError):
            db.table("acct").update(txn, slots[0], {})
        db.commit(txn)

    def test_update_unallocated_rejected(self, db):
        txn = db.begin()
        with pytest.raises(ConfigError):
            db.table("acct").update(txn, 3, {"balance": 1})
        db.commit(txn)


class TestDelete:
    def test_delete_frees_slot_and_index(self, db):
        slots = insert_accounts(db, 3)
        table = db.table("acct")
        txn = db.begin()
        table.delete(txn, slots[1])
        assert table.lookup(txn, 1) is None
        assert table.row_count(txn) == 2
        db.commit(txn)

    def test_deleted_slot_reusable(self, db):
        slots = insert_accounts(db, 3)
        table = db.table("acct")
        txn = db.begin()
        table.delete(txn, slots[0])
        new_slot = table.insert(txn, {"id": 50, "balance": 5})
        assert new_slot == slots[0]
        db.commit(txn)


class TestLogicalUndoSymmetry:
    """abort() after each operation kind restores the prior logical state.

    Logical undo (multi-level recovery) restores *logical* content --
    allocation hints and index entry-pool positions may legitimately
    differ -- so the oracle compares allocated slots, record bytes and
    key lookups, not raw segment bytes.
    """

    def snapshot(self, db):
        table = db.table("acct")
        txn = db.begin()
        state = {
            slot: table.read_bytes(txn, slot) for slot in table.scan_slots(txn)
        }
        keys = {
            state[slot]: table.lookup(
                txn, table.schema.decode_field("id", state[slot][:8])
            )
            for slot in state
        }
        db.commit(txn)
        return state, keys

    def test_insert_undo(self, db):
        insert_accounts(db, 2)
        before = self.snapshot(db)
        txn = db.begin()
        db.table("acct").insert(txn, {"id": 70, "balance": 7})
        db.abort(txn)
        after = self.snapshot(db)
        assert before == after

    def test_delete_undo(self, db):
        slots = insert_accounts(db, 2)
        before = self.snapshot(db)
        txn = db.begin()
        db.table("acct").delete(txn, slots[1])
        db.abort(txn)
        assert self.snapshot(db) == before

    def test_update_undo(self, db):
        slots = insert_accounts(db, 2)
        before = self.snapshot(db)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 1, "name": "zz"})
        db.abort(txn)
        assert self.snapshot(db) == before

    def test_mixed_undo(self, db):
        slots = insert_accounts(db, 3)
        before = self.snapshot(db)
        txn = db.begin()
        table = db.table("acct")
        table.update(txn, slots[0], {"balance": 1})
        table.delete(txn, slots[1])
        table.insert(txn, {"id": 88, "balance": 8})
        table.update(txn, slots[2], {"name": "yy"})
        db.abort(txn)
        assert self.snapshot(db) == before


class TestLocking:
    def test_concurrent_writers_conflict(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        t1, t2 = db.begin(), db.begin()
        table.update(t1, slots[0], {"balance": 1})
        with pytest.raises(LockError):
            table.update(t2, slots[0], {"balance": 2})
        db.commit(t1)
        db.abort(t2)

    def test_readers_share(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        t1, t2 = db.begin(), db.begin()
        assert table.read(t1, slots[0]) == table.read(t2, slots[0])
        db.commit(t1)
        db.commit(t2)

    def test_reader_blocks_writer(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        t1, t2 = db.begin(), db.begin()
        table.read(t1, slots[0])
        with pytest.raises(LockError):
            table.update(t2, slots[0], {"balance": 2})
        db.commit(t1)
        db.abort(t2)
