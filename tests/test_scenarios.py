"""Cross-cutting end-to-end scenarios."""

from repro import Database, DBConfig, FaultInjector

from tests.conftest import insert_accounts


class TestSchemeMigration:
    """Protection is a runtime choice: the on-disk format is scheme-free."""

    def test_recover_under_a_different_scheme(self, db_factory):
        db = db_factory(scheme="baseline")
        slots = insert_accounts(db, 5)
        db.crash()
        upgraded = DBConfig(
            dir=db.config.dir,
            scheme="data_cw",
            scheme_params={"region_size": 4096},
        )
        db2, report = Database.recover(upgraded)
        assert report.mode == "normal"
        assert db2.audit().clean  # codewords rebuilt over recovered image
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 100
        db2.commit(txn)
        # ...and the new protection actually works.
        FaultInjector(db2, seed=1).wild_write(
            db2.table("acct").record_address(slots[0]), 8
        )
        assert not db2.audit().clean
        db2.close()

    def test_downgrade_to_baseline(self, db_factory):
        db = db_factory(scheme="precheck", region_size=64)
        slots = insert_accounts(db, 3)
        db.crash()
        db2, _ = Database.recover(DBConfig(dir=db.config.dir, scheme="baseline"))
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[1])["balance"] == 100
        db2.commit(txn)
        db2.close()


class TestRepeatedCrashCycles:
    def test_five_crash_recover_cycles_accumulate_work(self, db_factory):
        db = db_factory(scheme="data_cw")
        slots = insert_accounts(db, 3)
        config = db.config
        expected = 100
        for round_no in range(5):
            txn = db.begin()
            db.table("acct").update(
                txn, slots[0], {"balance": lambda b: b + 1}
            )
            db.commit(txn)
            expected += 1
            db.crash()
            db, _ = Database.recover(config)
            txn = db.begin()
            assert db.table("acct").read(txn, slots[0])["balance"] == expected
            db.commit(txn)
            assert db.audit().clean
        db.close()

    def test_corruption_recovery_then_normal_crash(self, db_factory):
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 5)
        db.checkpoint()
        FaultInjector(db, seed=1).wild_write(
            db.table("acct").record_address(slots[1]) + 8, 8
        )
        report = db.audit()
        db.crash_with_corruption(report)
        db2, rec1 = Database.recover(db.config)
        assert rec1.mode == "delete-transaction-view"
        txn = db2.begin()
        db2.table("acct").update(txn, slots[0], {"balance": 7})
        db2.commit(txn)
        db2.crash()
        db3, rec2 = Database.recover(db2.config)
        # corruption recovery's final checkpoint means the same corruption
        # is never rediscovered
        assert rec2.deleted_set == set()
        txn = db3.begin()
        assert db3.table("acct").read(txn, slots[0])["balance"] == 7
        db3.commit(txn)
        db3.close()

    def test_recovery_is_idempotent(self, db_factory):
        """Crash immediately after recovery: same state again."""
        db = db_factory(scheme="data_cw")
        slots = insert_accounts(db, 4)
        txn = db.begin()
        db.table("acct").update(txn, slots[2], {"balance": 222})
        db.commit(txn)
        db.crash()
        db2, _ = Database.recover(db.config)
        state_after_first = db2.memory.snapshot_segments()
        db2.crash()
        db3, _ = Database.recover(db2.config)
        assert db3.memory.snapshot_segments() == state_after_first
        db3.close()


class TestDeferredSchemeCrash:
    def test_pending_deltas_survive_crash_via_rebuild(self, db_factory):
        """Deferred maintenance loses its in-memory delta buffer at crash;
        startup() rebuilds codewords from the recovered image, so audits
        stay clean and detection still works afterwards."""
        db = db_factory(scheme="deferred", region_size=4096)
        slots = insert_accounts(db, 5)
        assert db.scheme.pending_region_count > 0  # deltas in memory only
        db.crash()
        db2, _ = Database.recover(db.config)
        assert db2.audit().clean
        FaultInjector(db2, seed=1).wild_write(
            db2.table("acct").record_address(slots[0]), 8
        )
        assert not db2.audit().clean
        db2.close()


class TestCorruptionInControlStructures:
    def test_bitmap_corruption_traced_through_inserts(self, db_factory):
        """A wild write on the allocation bitmap is carried by an insert
        that reads it; delete-transaction recovery removes the insert."""
        db = db_factory(scheme="cw_read_logging")
        insert_accounts(db, 5)
        db.checkpoint()
        table = db.table("acct")
        # Corrupt the bitmap byte covering slots 0-7: the next insert's
        # free-slot scan reads it (current value 0b00011111 for 5 rows).
        db.memory.poke(table.allocator.bitmap_base, b"\x55")
        txn = db.begin()
        table.insert(txn, {"id": 99, "balance": 1})
        db.commit(txn)
        inserter = txn.txn_id
        report = db.audit()
        assert not report.clean
        db.crash_with_corruption(report)
        db2, rec = Database.recover(db.config)
        assert inserter in rec.deleted_set
        txn = db2.begin()
        assert db2.table("acct").lookup(txn, 99) is None
        assert db2.table("acct").row_count(txn) == 5
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()


class TestMultiTableCorruption:
    def test_corruption_confined_to_one_table(self, db_factory):
        from repro.storage.schema import Field, FieldType, Schema

        other = Schema([Field("k", FieldType.INT64), Field("v", FieldType.INT64)])
        db = db_factory(
            scheme="cw_read_logging",
            tables=[
                ("acct", __import__("tests.conftest", fromlist=["ACCT_SCHEMA"]).ACCT_SCHEMA, 100, "id"),
                ("other", other, 100, "k"),
            ],
        )
        acct = db.table("acct")
        other_t = db.table("other")
        txn = db.begin()
        for i in range(5):
            acct.insert(txn, {"id": i, "balance": 100})
            other_t.insert(txn, {"k": i, "v": i * 10})
        db.commit(txn)
        db.checkpoint()
        FaultInjector(db, seed=1).wild_write(acct.record_address(1) + 8, 8)
        txn = db.begin()
        other_t.update(txn, 2, {"v": 999})  # never touches acct
        db.commit(txn)
        clean_txn = txn.txn_id
        report = db.audit()
        db.crash_with_corruption(report)
        db2, rec = Database.recover(db.config)
        assert clean_txn not in rec.deleted_set
        txn = db2.begin()
        assert db2.table("other").read(txn, 2)["v"] == 999
        db2.commit(txn)
        db2.close()
