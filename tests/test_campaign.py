"""Fault-campaign engine: seeded schedules, scoring, determinism."""

import dataclasses

import pytest

from repro.faults.campaign import (
    CampaignSpec,
    DEFAULT_SCHEMES,
    DIRECT_FAULT_KINDS,
    run_campaign,
)


TINY = CampaignSpec(
    seeds=(1, 2),
    schemes=("data_codeword", "read_precheck"),
    schedules_per_config=4,
    ops_per_schedule=12,
    accounts=8,
)


@pytest.fixture(scope="module")
def tiny_result(tmp_path_factory):
    return run_campaign(TINY, str(tmp_path_factory.mktemp("campaign")))


class TestCampaign:
    def test_runs_every_schedule(self, tiny_result):
        assert len(tiny_result.outcomes) == TINY.total_schedules == 16
        assert not tiny_result.errors

    def test_zero_false_negatives_for_direct_faults(self, tiny_result):
        assert tiny_result.false_negatives == []
        for outcome in tiny_result.outcomes:
            if outcome.fault_kind in DIRECT_FAULT_KINDS and not outcome.crashed:
                assert outcome.detection_stage != "none"

    def test_quarantine_never_serves_garbage(self, tiny_result):
        assert tiny_result.garbage_served == []

    def test_repairs_and_values_check_out(self, tiny_result):
        for outcome in tiny_result.outcomes:
            assert outcome.repair_ok, outcome
            assert outcome.value_ok, outcome

    def test_scoreboard_covers_every_scheme(self, tiny_result):
        board = tiny_result.scoreboard()
        assert set(board) == set(TINY.schemes)
        for row in board.values():
            assert row["schedules"] == 8
            assert row["false_negatives"] == 0

    def test_payload_is_json_shaped(self, tiny_result):
        import json

        payload = tiny_result.to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schedules"] == 16
        assert payload["false_negatives"] == 0

    def test_deterministic_across_runs(self, tmp_path_factory, tiny_result):
        again = run_campaign(TINY, str(tmp_path_factory.mktemp("campaign2")))
        key = lambda o: (o.scheme, o.seed, o.index)
        first = sorted(tiny_result.outcomes, key=key)
        second = sorted(again.outcomes, key=key)
        assert [dataclasses.asdict(o) for o in first] == [
            dataclasses.asdict(o) for o in second
        ]


class TestSpec:
    def test_default_schemes_cover_issue_stacks(self):
        assert "data_codeword" in DEFAULT_SCHEMES
        assert "read_precheck" in DEFAULT_SCHEMES
        assert "read_logging" in DEFAULT_SCHEMES
        assert any("+" in scheme for scheme in DEFAULT_SCHEMES)

    def test_acceptance_scale_meets_200_schedules(self):
        assert CampaignSpec().total_schedules >= 200
