"""Deterministic shutdown (``Database.close``/``Database.crash``).

Both lifecycle exits route through the scheduler so there is exactly one
drain order: flush the group-commit window (close only -- crash *loses*
it), then settle any in-flight sweep fold.  ``close()`` is idempotent,
and a ``close()`` after ``crash()`` is a no-op that must not resurrect
the lost window.
"""

from __future__ import annotations

from repro import Database, DBConfig

from tests.conftest import ACCT_SCHEMA, insert_accounts


def make_db(tmp_path, name, **config_kwargs) -> Database:
    config_kwargs.setdefault("scheme", "baseline")
    config = DBConfig(dir=str(tmp_path / name), **config_kwargs)
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    return db


def drain_runs(db: Database) -> dict[str, int]:
    return {i.name: i.runs for i in db.scheduler.tasks() if i.kind == "drain"}


class TestCloseDrain:
    def test_close_flushes_the_group_commit_window(self, tmp_path):
        """Commits held back by an unfilled window become durable on
        close: recovery replays them instead of rolling them back."""
        db = make_db(tmp_path, "flush", group_commit_size=8)
        slots = insert_accounts(db, 3)
        txn = db.begin()
        db.table("acct").update(txn, slots[1], {"balance": 777})
        db.commit(txn)
        assert db.system_log.tail  # window not full: commit held back
        db.close()
        recovered, _report = Database.recover(DBConfig(dir=db.config.dir, scheme="baseline"))
        check = recovered.begin()
        assert recovered.table("acct").read(check, slots[1])["balance"] == 777
        recovered.commit(check)
        recovered.close()

    def test_drain_steps_run_once_in_fixed_order(self, tmp_path):
        db = make_db(tmp_path, "order", group_commit_size=8)
        insert_accounts(db, 2)
        assert drain_runs(db) == {"group_commit.flush": 0, "audit.sweeps": 0}
        scheduler = db.scheduler
        db.close()
        assert drain_runs(db) == {"group_commit.flush": 1, "audit.sweeps": 1}
        # The drain is safe to repeat and always yields the same order:
        # window flush strictly before sweep settlement.
        assert scheduler.drain() == ["group_commit.flush", "audit.sweeps"]

    def test_double_close_is_idempotent(self, tmp_path):
        db = make_db(tmp_path, "twice", group_commit_size=8)
        insert_accounts(db, 2)
        db.close()
        runs_after_first = drain_runs(db)
        db.close()  # no error, no second drain
        assert drain_runs(db) == runs_after_first
        assert runs_after_first["group_commit.flush"] == 1


class TestCrashDrain:
    def test_crash_loses_the_window_instead_of_flushing(self, tmp_path):
        db = make_db(tmp_path, "lost", group_commit_size=8)
        slots = insert_accounts(db, 3)
        db.manager.flush_commits()
        txn = db.begin()
        db.table("acct").update(txn, slots[1], {"balance": 777})
        db.commit(txn)
        assert db.system_log.tail  # commit record still volatile
        db.crash()
        # Crash drain must not run the close-only flush step.
        assert drain_runs(db)["group_commit.flush"] == 0
        assert drain_runs(db)["audit.sweeps"] == 1
        recovered, _report = Database.recover(DBConfig(dir=db.config.dir, scheme="baseline"))
        check = recovered.begin()
        assert recovered.table("acct").read(check, slots[1])["balance"] == 100
        recovered.commit(check)
        recovered.close()

    def test_crash_settles_an_inflight_background_sweep(self, tmp_path):
        db = make_db(
            tmp_path,
            "sweep",
            scheme="data_codeword",
            audit_mode="incremental",
            full_sweep_every=2,
            background_sweeps=True,
        )
        insert_accounts(db, 4)
        for _ in range(2):
            db.audit()  # cadence launches a background sweep
        assert db.auditor._sweep is not None
        db.crash()
        assert db.scheduler.live_background == ()
        assert db.auditor._sweep is None or db.auditor._sweep.done

    def test_close_after_crash_is_a_noop(self, tmp_path):
        db = make_db(tmp_path, "postcrash", group_commit_size=8)
        slots = insert_accounts(db, 2)
        db.manager.flush_commits()
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 999})
        db.commit(txn)
        db.crash()
        db.close()  # must not flush the lost window
        assert drain_runs(db)["group_commit.flush"] == 0
        recovered, _report = Database.recover(DBConfig(dir=db.config.dir, scheme="baseline"))
        check = recovered.begin()
        assert recovered.table("acct").read(check, slots[0])["balance"] == 100
        recovered.commit(check)
        recovered.close()

    def test_double_crash_is_idempotent(self, tmp_path):
        db = make_db(tmp_path, "crash2")
        insert_accounts(db, 2)
        db.crash()
        runs = drain_runs(db)
        db.crash()
        assert drain_runs(db) == runs
