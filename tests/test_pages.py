"""Page geometry and the ping-pong dirty page table."""

from hypothesis import given, strategies as st

from repro.mem.pages import DirtyPageTable, page_range, page_span


class TestPageRange:
    def test_within_one_page(self):
        assert list(page_range(10, 20, 4096)) == [0]

    def test_spans_boundary(self):
        assert list(page_range(4090, 10, 4096)) == [0, 1]

    def test_exact_page(self):
        assert list(page_range(4096, 4096, 4096)) == [1]

    def test_zero_length_touches_one_page(self):
        assert list(page_range(5000, 0, 4096)) == [1]

    @given(
        st.integers(min_value=0, max_value=1 << 24),
        st.integers(min_value=1, max_value=1 << 16),
    )
    def test_span_covers_every_byte(self, address, length):
        pages = set(page_range(address, length, 4096))
        for byte in (address, address + length - 1, address + length // 2):
            assert byte // 4096 in pages
        assert page_span(address, length, 4096) == len(pages)


class TestDirtyPageTable:
    def test_dirty_pending_for_both_images(self):
        dpt = DirtyPageTable()
        dpt.note_dirty(7)
        assert 7 in dpt.pending_for("A")
        assert 7 in dpt.pending_for("B")

    def test_clear_is_per_image(self):
        """The ping-pong invariant: clearing A leaves the page pending for B."""
        dpt = DirtyPageTable()
        dpt.note_dirty(3)
        dpt.clear_for("A", [3])
        assert 3 not in dpt.pending_for("A")
        assert 3 in dpt.pending_for("B")

    def test_redirty_after_clear(self):
        dpt = DirtyPageTable()
        dpt.note_dirty(1)
        dpt.clear_for("A", [1])
        dpt.note_dirty(1)
        assert 1 in dpt.pending_for("A")

    def test_note_dirty_range(self):
        dpt = DirtyPageTable()
        dpt.note_dirty_range(4090, 10, 4096)
        assert {0, 1} <= dpt.pending_for("A")

    def test_mark_all_dirty(self):
        dpt = DirtyPageTable()
        dpt.mark_all_dirty(range(5))
        assert dpt.pending_for("A") == frozenset(range(5))
        assert dpt.pending_for("B") == frozenset(range(5))

    def test_alternating_checkpoints_converge(self):
        """Simulate two alternating checkpoints draining all dirt."""
        dpt = DirtyPageTable()
        dpt.note_dirty(0)
        dpt.note_dirty(1)
        pages_a = dpt.pending_for("A")
        dpt.clear_for("A", pages_a)
        dpt.note_dirty(2)  # new dirt between checkpoints
        pages_b = dpt.pending_for("B")
        assert pages_b == frozenset({0, 1, 2})
        dpt.clear_for("B", pages_b)
        assert dpt.pending_for("B") == frozenset()
        assert dpt.pending_for("A") == frozenset({2})
