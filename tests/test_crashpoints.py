"""Crash points: deterministic crashes at every durability boundary."""

import os

import pytest

from repro import Database, CrashPointRegistry
from repro.errors import ConfigError, SimulatedCrash
from repro.faults.crashpoints import (
    CRASH_POINTS,
    FORWARD_CRASH_POINTS,
    RECOVERY_CRASH_POINTS,
)

from tests.conftest import insert_accounts


class TestRegistry:
    def test_unknown_point_rejected(self):
        reg = CrashPointRegistry()
        with pytest.raises(ConfigError):
            reg.arm("wal.flush.sideways")
        with pytest.raises(ConfigError):
            reg.reach("nope")

    def test_subset_constants_are_valid(self):
        assert set(RECOVERY_CRASH_POINTS) <= set(CRASH_POINTS)
        assert set(FORWARD_CRASH_POINTS) <= set(CRASH_POINTS)
        assert not set(RECOVERY_CRASH_POINTS) & set(FORWARD_CRASH_POINTS)

    def test_unarmed_reach_is_noop(self):
        reg = CrashPointRegistry()
        assert reg.reach("wal.flush.pre") is None
        assert reg.hits["wal.flush.pre"] == 1
        assert reg.fired == []

    def test_armed_point_fires_once(self):
        reg = CrashPointRegistry().arm("wal.flush.pre")
        with pytest.raises(SimulatedCrash) as exc:
            reg.reach("wal.flush.pre")
        assert exc.value.point == "wal.flush.pre"
        assert reg.fired == ["wal.flush.pre"]
        # One-shot: the same point does not fire again.
        assert reg.reach("wal.flush.pre") is None

    def test_hit_counts_cumulative_traversals(self):
        reg = CrashPointRegistry().arm("checkpoint.pre_anchor", hit=3)
        assert reg.reach("checkpoint.pre_anchor") is None
        assert reg.reach("checkpoint.pre_anchor") is None
        with pytest.raises(SimulatedCrash) as exc:
            reg.reach("checkpoint.pre_anchor")
        assert exc.value.hit == 3

    def test_invalid_hit_rejected(self):
        with pytest.raises(ConfigError):
            CrashPointRegistry().arm("wal.flush.pre", hit=0)

    def test_defer_returns_armed_record(self):
        reg = CrashPointRegistry().arm("wal.flush.mid", keep_bytes=5)
        armed = reg.reach("wal.flush.mid", defer=True)
        assert armed is not None and armed.payload == {"keep_bytes": 5}
        with pytest.raises(SimulatedCrash):
            reg.crash("wal.flush.mid")

    def test_disarm_and_reset(self):
        reg = CrashPointRegistry().arm("recovery.after_redo")
        reg.disarm("recovery.after_redo")
        assert reg.reach("recovery.after_redo") is None
        reg.arm("recovery.after_redo")
        reg.reset()
        assert reg.armed_points() == ()
        assert reg.reach("recovery.after_redo") is None


class TestFlushCrashPoints:
    def test_pre_flush_crash_loses_whole_commit(self, db):
        slots = insert_accounts(db, 2)
        db.checkpoint()
        db.crashpoints.arm("wal.flush.pre")
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 7})
        with pytest.raises(SimulatedCrash):
            db.commit(txn)
        db.crash()
        db2, _ = Database.recover(db.config)
        txn = db2.begin()
        # Nothing of the flush reached disk: the update rolls back.
        assert db2.table("acct").read(txn, slots[0])["balance"] == 100
        db2.commit(txn)
        db2.close()

    def test_mid_flush_crash_leaves_detectable_torn_tail(self, db):
        slots = insert_accounts(db, 2)
        db.checkpoint()
        db.system_log.flush()
        db.crashpoints.arm("wal.flush.mid")  # default: keep half the buffer
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 7})
        with pytest.raises(SimulatedCrash):
            db.commit(txn)
        db.crash()
        db2, _ = Database.recover(db.config)
        # Recovery saw (and truncated) the torn prefix; a strict scan of
        # the repaired log accounts for every byte.
        list(db2.system_log.scan(strict=True))
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 100
        db2.commit(txn)
        result = db2.checkpoint()
        assert result.certified
        db2.close()

    def test_post_flush_crash_keeps_commit_durable(self, db):
        slots = insert_accounts(db, 2)
        db.checkpoint()
        db.crashpoints.arm("wal.flush.post")
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 7})
        with pytest.raises(SimulatedCrash):
            db.commit(txn)
        db.crash()
        db2, _ = Database.recover(db.config)
        txn = db2.begin()
        # The bytes hit disk before the crash: the commit survives.
        assert db2.table("acct").read(txn, slots[0])["balance"] == 7
        db2.commit(txn)
        db2.close()

    def test_mid_flush_keep_bytes_payload(self, db):
        slots = insert_accounts(db, 1)
        before = os.path.getsize(db.system_log.path)
        db.crashpoints.arm("wal.flush.mid", keep_bytes=3)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 9})
        with pytest.raises(SimulatedCrash):
            db.commit(txn)
        # Exactly the torn prefix reached the file.
        assert os.path.getsize(db.system_log.path) == before + 3


class TestArchiveCrashPoint:
    def test_media_recovery_restartable_after_restore_crash(self, db_factory, tmp_path):
        from repro.recovery.archive import create_archive, recover_from_archive

        db = db_factory(scheme="data_cw")
        slots = insert_accounts(db, 3)
        archive_dir = str(tmp_path / "archive")
        create_archive(db, archive_dir)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 321})
        db.commit(txn)
        db.crash()

        registry = CrashPointRegistry().arm("archive.after_restore")
        with pytest.raises(SimulatedCrash):
            recover_from_archive(db.config, archive_dir, crashpoints=registry)
        # The restore is idempotent: re-running from the half-restored
        # state (files copied, replay never begun) converges.
        db2, _ = recover_from_archive(db.config, archive_dir, crashpoints=registry)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 321
        db2.commit(txn)
        db2.close()
