"""Slot allocator over a raw memory accessor."""

import pytest

from repro.errors import ConfigError, OutOfSpaceError
from repro.mem.allocator import SlotAllocator
from repro.mem.memory import MemoryImage


class RawAccessor:
    """Direct accessor: the allocator's view without a transaction."""

    def __init__(self, memory: MemoryImage) -> None:
        self.memory = memory

    def read(self, address: int, length: int) -> bytes:
        return self.memory.read(address, length)

    def update(self, address: int, new_bytes: bytes) -> None:
        self.memory.write(address, new_bytes)


def make_allocator(slots=64, slot_size=100):
    memory = MemoryImage(page_size=4096)
    data = memory.add_segment("data", slots * slot_size)
    probe = SlotAllocator(0, data.base, slots, slot_size)
    ctl = memory.add_segment("ctl", probe.control_size, kind="control")
    alloc = SlotAllocator(ctl.base, data.base, slots, slot_size)
    ctx = RawAccessor(memory)
    alloc.format(ctx)
    return alloc, ctx


class TestAllocate:
    def test_sequential_allocation(self):
        alloc, ctx = make_allocator()
        assert [alloc.allocate(ctx) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_allocated_count(self):
        alloc, ctx = make_allocator()
        for _ in range(3):
            alloc.allocate(ctx)
        assert alloc.allocated_count(ctx) == 3

    def test_is_allocated(self):
        alloc, ctx = make_allocator()
        slot = alloc.allocate(ctx)
        assert alloc.is_allocated(ctx, slot)
        assert not alloc.is_allocated(ctx, slot + 1)

    def test_full_allocator_raises(self):
        alloc, ctx = make_allocator(slots=8)
        for _ in range(8):
            alloc.allocate(ctx)
        with pytest.raises(OutOfSpaceError):
            alloc.allocate(ctx)

    def test_slot_addresses(self):
        alloc, ctx = make_allocator(slot_size=100)
        assert alloc.slot_address(3) == alloc.data_base + 300
        assert alloc.slot_for_address(alloc.data_base + 350) == 3

    def test_slot_address_bounds(self):
        alloc, _ = make_allocator(slots=8)
        with pytest.raises(ConfigError):
            alloc.slot_address(8)
        with pytest.raises(ConfigError):
            alloc.slot_for_address(alloc.data_base - 1)


class TestFree:
    def test_free_and_reuse(self):
        alloc, ctx = make_allocator()
        slots = [alloc.allocate(ctx) for _ in range(4)]
        alloc.free(ctx, slots[1])
        assert not alloc.is_allocated(ctx, slots[1])
        # Hint moved back to the freed slot, so it is reused next.
        assert alloc.allocate(ctx) == slots[1]

    def test_double_free_rejected(self):
        alloc, ctx = make_allocator()
        slot = alloc.allocate(ctx)
        alloc.free(ctx, slot)
        with pytest.raises(ConfigError):
            alloc.free(ctx, slot)

    def test_free_unallocated_rejected(self):
        alloc, ctx = make_allocator()
        with pytest.raises(ConfigError):
            alloc.free(ctx, 5)


class TestAllocateAt:
    def test_allocate_specific_slot(self):
        alloc, ctx = make_allocator()
        alloc.allocate_at(ctx, 7)
        assert alloc.is_allocated(ctx, 7)
        assert alloc.allocated_count(ctx) == 1

    def test_allocate_at_taken_slot_rejected(self):
        alloc, ctx = make_allocator()
        alloc.allocate_at(ctx, 7)
        with pytest.raises(ConfigError):
            alloc.allocate_at(ctx, 7)

    def test_allocator_skips_specifically_allocated(self):
        alloc, ctx = make_allocator()
        alloc.allocate_at(ctx, 0)
        assert alloc.allocate(ctx) == 1


class TestIteration:
    def test_iter_allocated(self):
        alloc, ctx = make_allocator()
        expected = {alloc.allocate(ctx) for _ in range(10)}
        alloc.free(ctx, 4)
        expected.discard(4)
        assert set(alloc.iter_allocated(ctx)) == expected

    def test_iter_empty(self):
        alloc, ctx = make_allocator()
        assert list(alloc.iter_allocated(ctx)) == []

    def test_fill_free_fill_cycle(self):
        alloc, ctx = make_allocator(slots=16)
        slots = [alloc.allocate(ctx) for _ in range(16)]
        for s in slots:
            alloc.free(ctx, s)
        assert alloc.allocated_count(ctx) == 0
        refilled = [alloc.allocate(ctx) for _ in range(16)]
        assert sorted(refilled) == slots
