"""A small replication campaign run: the bench gate must hold.

One seed over a representative slice of the fault matrix -- the full
3-seed x 11-kind matrix runs under ``python -m repro.bench
--replication`` (and the CI ``replication-bench`` job).
"""

from __future__ import annotations

from repro.bench.replication import gate_failures, replication_payload
from repro.replication.campaign import (
    ReplicationCampaignSpec,
    run_replication_campaign,
)


def test_small_campaign_gate_holds(tmp_path):
    spec = ReplicationCampaignSpec(
        seeds=(1,),
        kinds=(
            "clean",
            "abrupt_death",
            "primary_wild_write_cold",
            "replica_wild_write",
            "ship_drop",
            "crash_replica",
        ),
    )
    result = run_replication_campaign(spec, str(tmp_path / "campaign"))
    assert len(result.outcomes) == spec.total_schedules
    assert gate_failures(result) == [], [o.error for o in result.errors]

    # Every schedule failed over to a certified image with good values.
    for outcome in result.outcomes:
        assert outcome.promoted and outcome.certified
        assert outcome.value_ok

    # The headline: the replica's digest epoch caught the cold wild
    # write strictly faster than the single node's final full sweep.
    cold = result.cold_comparison()
    assert cold["compared"] == 1
    assert cold["replica_strictly_faster"]

    # The abrupt death lost commits -- surfaced, and within the bound.
    dead = [o for o in result.outcomes if o.kind == "abrupt_death"]
    assert dead[0].lost_commit_window is not None
    assert dead[0].lost_commit_window <= dead[0].lost_window_bound

    payload = replication_payload(result, quick=True)
    assert payload["false_negatives"] == 0
    assert payload["detection_latency_ops"]["max"] is not None
