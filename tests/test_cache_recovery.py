"""Cache-recovery model: in-place repair of directly corrupted regions."""

import pytest

from repro import FaultInjector
from repro.errors import RecoveryError
from repro.recovery.cache_recovery import repair_regions

from tests.conftest import insert_accounts


@pytest.fixture
def cdb(db_factory):
    db = db_factory(scheme="data_cw", region_size=4096)
    return db


class TestRepair:
    def test_repair_restores_checkpointed_data(self, cdb):
        slots = insert_accounts(cdb, 5)
        cdb.checkpoint()
        table = cdb.table("acct")
        injector = FaultInjector(cdb, seed=1)
        injector.wild_write(table.record_address(slots[2]) + 8, 8)
        report = cdb.audit()
        assert not report.clean
        repaired = repair_regions(cdb, list(report.corrupt_regions))
        assert repaired == len(report.corrupt_regions)
        assert cdb.audit().clean
        txn = cdb.begin()
        assert table.read(txn, slots[2])["balance"] == 100
        cdb.commit(txn)

    def test_repair_replays_post_checkpoint_commits(self, cdb):
        slots = insert_accounts(cdb, 3)
        cdb.checkpoint()
        table = cdb.table("acct")
        txn = cdb.begin()
        table.update(txn, slots[0], {"balance": 424})
        cdb.commit(txn)
        injector = FaultInjector(cdb, seed=2)
        injector.wild_write(table.record_address(slots[0]) + 16, 4)
        report = cdb.audit()
        repair_regions(cdb, list(report.corrupt_regions))
        txn = cdb.begin()
        assert table.read(txn, slots[0])["balance"] == 424
        cdb.commit(txn)

    def test_repair_replays_unflushed_tail(self, cdb):
        slots = insert_accounts(cdb, 3)
        cdb.checkpoint()
        table = cdb.table("acct")
        txn = cdb.begin()
        table.update(txn, slots[1], {"balance": 77})
        # op committed -> record is in the (unflushed) system log tail
        injector = FaultInjector(cdb, seed=3)
        injector.wild_write(table.record_address(slots[1]) + 16, 4)
        report = cdb.audit()
        repair_regions(cdb, list(report.corrupt_regions))
        assert table.read(txn, slots[1])["balance"] == 77
        cdb.commit(txn)

    def test_repair_replays_open_operation_local_records(self, cdb):
        """Updates of an open operation live only in the local redo log."""
        slots = insert_accounts(cdb, 3)
        cdb.checkpoint()
        table = cdb.table("acct")
        address = table.record_address(slots[1])
        txn = cdb.begin()
        cdb.manager.begin_operation(txn, "w")
        offset, _ = table.schema.field_range("balance")
        cdb.manager.update(txn, address + offset, (999).to_bytes(8, "little"))
        injector = FaultInjector(cdb, seed=4)
        injector.wild_write(address + 16, 4)
        report = cdb.audit()
        repair_regions(cdb, list(report.corrupt_regions))
        from repro.wal.records import LogicalUndo

        cdb.manager.commit_operation(txn, LogicalUndo("noop"))
        cdb.commit(txn)
        txn = cdb.begin()
        assert table.read(txn, slots[1])["balance"] == 999
        cdb.commit(txn)

    def test_precheck_failure_then_online_repair(self, db_factory):
        """The Read Prechecking + cache recovery flow: no crash needed."""
        from repro.errors import CorruptionDetected

        db = db_factory(scheme="precheck", region_size=64)
        slots = insert_accounts(db, 5)
        db.checkpoint()
        table = db.table("acct")
        db.memory.poke(table.record_address(slots[3]), b"\x66" * 8)
        txn = db.begin()
        with pytest.raises(CorruptionDetected) as exc:
            table.read(txn, slots[3])
        repair_regions(db, exc.value.region_ids)
        assert table.read(txn, slots[3])["balance"] == 100
        db.commit(txn)

    def test_repair_needs_codewords(self, db):
        insert_accounts(db, 1)
        db.checkpoint()
        with pytest.raises(RecoveryError):
            repair_regions(db, [0])
