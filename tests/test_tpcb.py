"""The TPC-B workload generator and benchmark harness."""

import pytest

from repro import DBConfig
from repro.bench.harness import SchemeSpec, run_scheme
from repro.bench.platforms import PLATFORMS, mprotect_microbenchmark
from repro.bench.reporting import render_table1, render_table2
from repro.bench.tpcb import (
    ACCOUNT_SCHEMA,
    BRANCH_SCHEMA,
    HISTORY_SCHEMA,
    TELLER_SCHEMA,
    TPCBConfig,
    TPCBWorkload,
    build_tpcb_database,
    load_tpcb,
)
from repro.errors import WorkloadError

TINY = TPCBConfig(
    accounts=200, tellers=40, branches=4, operations=60, ops_per_txn=20
)


class TestSchemas:
    def test_all_records_are_100_bytes(self):
        """Section 5.2: four tables, each with 100 bytes per record."""
        for schema in (ACCOUNT_SCHEMA, TELLER_SCHEMA, BRANCH_SCHEMA, HISTORY_SCHEMA):
            assert schema.record_size == 100

    def test_paper_default_sizes(self):
        cfg = TPCBConfig()
        assert (cfg.accounts, cfg.tellers, cfg.branches) == (100_000, 10_000, 1_000)
        assert cfg.operations == 50_000
        assert cfg.ops_per_txn == 500

    def test_scaled(self):
        cfg = TPCBConfig().scaled(0.01)
        assert cfg.accounts == 1000
        assert cfg.tellers == 100
        assert cfg.branches == 10
        assert cfg.operations == 500

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            TPCBConfig().scaled(0)


class TestWorkload:
    def make_db(self, tmp_path, scheme="baseline"):
        db = build_tpcb_database(
            DBConfig(dir=str(tmp_path / "db"), scheme=scheme), TINY
        )
        load_tpcb(db, TINY)
        return db

    def test_load_populates_tables(self, tmp_path):
        db = self.make_db(tmp_path)
        txn = db.begin()
        assert db.table("account").row_count(txn) == TINY.accounts
        assert db.table("teller").row_count(txn) == TINY.tellers
        assert db.table("branch").row_count(txn) == TINY.branches
        assert db.table("history").row_count(txn) == 0
        db.commit(txn)
        db.close()

    def test_operations_update_balances_and_append_history(self, tmp_path):
        db = self.make_db(tmp_path)
        runner = TPCBWorkload(db, TINY)
        runner.run()
        txn = db.begin()
        assert db.table("history").row_count(txn) == TINY.operations
        # Money conservation: account deltas == teller deltas == branch deltas.
        totals = {}
        for name in ("account", "teller", "branch"):
            table = db.table(name)
            totals[name] = sum(
                table.read(txn, slot)["balance"] for slot in table.scan_slots(txn)
            )
        db.commit(txn)
        assert totals["account"] == totals["teller"] == totals["branch"]
        db.close()

    def test_commit_batching(self, tmp_path):
        db = self.make_db(tmp_path)
        before = db.manager.committed_count
        TPCBWorkload(db, TINY).run()
        committed = db.manager.committed_count - before
        assert committed == TINY.operations // TINY.ops_per_txn
        db.close()

    def test_deterministic_given_seed(self, tmp_path):
        balances = []
        for sub in ("x", "y"):
            db = build_tpcb_database(
                DBConfig(dir=str(tmp_path / sub)), TINY
            )
            load_tpcb(db, TINY)
            TPCBWorkload(db, TINY).run()
            txn = db.begin()
            table = db.table("account")
            balances.append(
                tuple(table.read(txn, s)["balance"] for s in range(20))
            )
            db.commit(txn)
            db.close()
        assert balances[0] == balances[1]

    def test_audit_clean_after_workload(self, tmp_path):
        db = self.make_db(tmp_path, scheme="data_cw")
        TPCBWorkload(db, TINY).run()
        assert db.audit().clean
        db.close()


class TestHarness:
    def test_run_scheme_reports_throughput(self, tmp_path):
        spec = SchemeSpec("Baseline", "baseline", {}, 417, 0.0)
        result = run_scheme(spec, TINY, str(tmp_path / "run"))
        assert result.operations == TINY.operations
        assert result.ops_per_sec > 0
        assert result.events  # event breakdown present

    def test_scheme_dir_names(self):
        assert SchemeSpec("x", "precheck", {"region_size": 64}).scheme_dir() == (
            "precheck_region_size64"
        )
        assert SchemeSpec("x", "baseline").scheme_dir() == "baseline"

    def test_codeword_scheme_slower_than_baseline(self, tmp_path):
        base = run_scheme(
            SchemeSpec("Baseline", "baseline"), TINY, str(tmp_path / "b")
        )
        cw = run_scheme(
            SchemeSpec("Data CW", "data_cw"), TINY, str(tmp_path / "c")
        )
        assert cw.ops_per_sec < base.ops_per_sec


class TestTable1:
    def test_microbenchmark_matches_paper_within_two_percent(self):
        for name, profile in PLATFORMS.items():
            measured = mprotect_microbenchmark(profile, pages=200, reps=5)
            assert measured == pytest.approx(profile.paper_pairs_per_sec, rel=0.02), name

    def test_hp_anomaly_reproduced(self):
        """HP has ~2x the SPECint92 of the SS20 but ~1/4 the mprotect rate."""
        hp = PLATFORMS["HP 9000 C110"]
        ss20 = PLATFORMS["SPARCstation 20"]
        assert hp.specint92 > ss20.specint92 * 1.8
        hp_rate = mprotect_microbenchmark(hp, pages=100, reps=2)
        ss20_rate = mprotect_microbenchmark(ss20, pages=100, reps=2)
        assert hp_rate < ss20_rate / 3


class TestReporting:
    def test_render_table1(self):
        measured = {name: float(p.paper_pairs_per_sec) for name, p in PLATFORMS.items()}
        text = render_table1(measured)
        assert "SPARCstation 20" in text and "15,600" in text

    def test_render_table2(self, tmp_path):
        result = run_scheme(
            SchemeSpec("Baseline", "baseline", {}, 417, 0.0),
            TINY,
            str(tmp_path / "r"),
        )
        result.slowdown_pct = 0.0
        text = render_table2([result])
        assert "Baseline" in text and "% Slower" in text


class TestRunTable2:
    def test_two_row_batch_computes_relative_slowdown(self, tmp_path):
        from repro.bench.harness import run_table2

        rows = (
            SchemeSpec("Baseline", "baseline", {}, 417, 0.0),
            SchemeSpec("Data CW", "data_cw", {}, 380, 8.5),
        )
        results = run_table2(TINY, str(tmp_path / "t2"), rows=rows)
        assert results[0].slowdown_pct == 0.0
        assert 0.0 < results[1].slowdown_pct < 30.0
        text = render_table2(results)
        assert "Data CW" in text
