"""Dirty-region incremental audits (``DBConfig(audit_mode="incremental")``).

The maintainer records which protection regions updates touched; an
incremental audit folds only those through the vectorized kernel.  Wild
writes bypass the prescribed interface and never land in the dirty set,
so the periodic full sweep (``full_sweep_every``) is a *correctness*
knob, not a tuning knob -- this suite pins both halves of that contract,
plus the meter/result equivalence of the run-grouped fast path against
the scalar per-region loop.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DBConfig, FaultInjector
from repro.core.maintainer import _contiguous_runs

from tests.conftest import ACCT_SCHEMA, insert_accounts


def make_incremental_db(tmp_path, name="idb", **overrides) -> Database:
    kwargs = dict(
        dir=str(tmp_path / name),
        scheme="data_cw",
        scheme_params={"region_size": 512},
        audit_mode="incremental",
        full_sweep_every=3,
    )
    kwargs.update(overrides)
    db = Database(DBConfig(**kwargs))
    db.create_table("acct", ACCT_SCHEMA, 200, key_field="id")
    db.start()
    return db


def maintainer_of(db: Database):
    return db.scheme.maintainer


def deposit(db: Database, slot: int, balance: int) -> None:
    txn = db.begin()
    db.table("acct").update(txn, slot, {"balance": balance})
    db.commit(txn)


class TestDirtySet:
    def test_updates_feed_the_dirty_set(self, tmp_path):
        db = make_incremental_db(tmp_path)
        slots = insert_accounts(db, 8)
        maintainer = maintainer_of(db)
        maintainer.clear_dirty()
        deposit(db, slots[0], 7)
        dirty = maintainer.dirty_region_list()
        assert dirty  # the touched region is tracked
        address = db.table("acct").record_address(slots[0])
        table = db.scheme.codeword_table
        assert set(dirty) >= set(table.regions_spanning(address, 8))
        db.close()

    def test_incremental_audit_checks_only_dirty_regions(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=100)
        slots = insert_accounts(db, 8)
        maintainer = maintainer_of(db)
        maintainer.clear_dirty()
        deposit(db, slots[3], 9)
        dirty = maintainer.dirty_region_list()
        before = db.meter.counts["cw_check_fixed"]
        report = db.audit()
        assert report.clean
        assert report.regions_checked == len(dirty)
        assert db.meter.counts["cw_check_fixed"] - before == len(dirty)
        # A clean dirty pass retires the audited regions from the set.
        assert maintainer.dirty_region_list() == []
        db.close()

    def test_clean_dirty_audit_clears_only_audited_regions(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=100)
        insert_accounts(db, 8)
        maintainer = maintainer_of(db)
        maintainer.clear_dirty()
        maintainer.dirty_regions.update({1, 4})
        report = db.auditor.run(region_ids=[1], advance_audit_sn=False)
        assert report.clean
        maintainer.clear_dirty([1])
        assert maintainer.dirty_region_list() == [4]
        db.close()

    def test_physical_undo_marks_dirty(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=100)
        slots = insert_accounts(db, 8)
        maintainer = maintainer_of(db)
        maintainer.clear_dirty()
        txn = db.begin()
        db.table("acct").update(txn, slots[2], {"balance": 1234})
        db.abort(txn)  # rollback applies physical/logical undo
        assert maintainer.dirty_region_list()  # undo writes are tracked too
        db.close()


class TestWildWriteVsDirtySet:
    def _clean_region_not_in(self, db, dirty: set[int]) -> int:
        table = db.scheme.codeword_table
        for region_id in range(table.region_count):
            if region_id not in dirty:
                return region_id
        pytest.skip("no clean region available")

    def test_wild_write_in_clean_region_needs_the_full_sweep(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=3)
        slots = insert_accounts(db, 8)
        maintainer = maintainer_of(db)
        db.audit()  # whatever its phase, a clean pass settles the dirty set
        maintainer.clear_dirty()
        db.auditor._dirty_audits_since_sweep = 0

        table = db.scheme.codeword_table
        target = self._clean_region_not_in(db, set(maintainer.dirty_region_list()))
        start, length = table.region_bounds(target)
        FaultInjector(db, seed=3).wild_write(start, min(8, length))
        assert target not in maintainer.dirty_regions  # poke bypassed the hooks

        # Dirty passes are blind to it: the corrupted region is not in
        # the set, so the incremental audits report clean.
        first = db.audit()
        second = db.audit()
        assert first.clean and second.clean
        # The third audit hits the full-sweep cadence and catches it.
        third = db.audit()
        assert not third.clean
        assert target in third.corrupt_regions
        db.close()

    def test_corruption_in_dirty_region_caught_immediately(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=100)
        slots = insert_accounts(db, 8)
        maintainer = maintainer_of(db)
        maintainer.clear_dirty()
        db.auditor._dirty_audits_since_sweep = 0
        deposit(db, slots[5], 77)  # marks the region dirty
        dirty = maintainer.dirty_region_list()
        address = db.table("acct").record_address(slots[5])
        FaultInjector(db, seed=4).wild_write(address, 8)
        report = db.audit()  # dirty pass, no full sweep needed
        assert not report.clean
        assert set(report.corrupt_regions) <= set(dirty)
        db.close()

    def test_audit_sn_advances_only_on_full_sweeps(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=3)
        slots = insert_accounts(db, 8)
        db.audit()
        db.auditor._dirty_audits_since_sweep = 0
        sn = db.auditor.last_clean_audit_lsn
        deposit(db, slots[0], 1)
        assert db.audit().clean  # dirty pass 1
        assert db.auditor.last_clean_audit_lsn == sn
        deposit(db, slots[1], 2)
        assert db.audit().clean  # dirty pass 2
        assert db.auditor.last_clean_audit_lsn == sn
        assert db.audit().clean  # full sweep
        assert db.auditor.last_clean_audit_lsn > sn
        db.close()

    def test_checkpoint_can_force_a_full_audit(self, tmp_path):
        db = make_incremental_db(tmp_path, full_sweep_every=1000)
        insert_accounts(db, 8)
        db.audit()
        maintainer = maintainer_of(db)
        maintainer.clear_dirty()
        target = self._clean_region_not_in(db, set())
        table = db.scheme.codeword_table
        start, length = table.region_bounds(target)
        FaultInjector(db, seed=6).wild_write(start, min(8, length))
        # The routine incremental checkpoint audit misses it...
        assert db.checkpointer.checkpoint().certified
        # ...but a forced full certification does not.
        result = db.checkpointer.checkpoint(force_full_audit=True)
        assert not result.certified
        assert target in result.audit_report.corrupt_regions
        db.close()


class TestRunGroupedEquivalence:
    """``audit_regions`` over an ascending list must be indistinguishable
    (results AND meter) from the scalar per-region loop."""

    @pytest.fixture(scope="class")
    def eqdb(self, tmp_path_factory):
        db = make_incremental_db(tmp_path_factory.mktemp("eq"), "eqdb")
        slots = insert_accounts(db, 40)
        for i in range(0, 40, 7):
            deposit(db, slots[i], 1000 + i)
        yield db
        db.close()

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_grouped_matches_scalar(self, eqdb, data):
        table = eqdb.scheme.codeword_table
        maintainer = maintainer_of(eqdb)
        ids = sorted(
            data.draw(
                st.sets(
                    st.integers(0, table.region_count - 1),
                    max_size=table.region_count,
                )
            )
        )

        def metered(call_ids):
            before = dict(eqdb.meter.counts)
            result = maintainer.audit_regions(call_ids)
            delta = {
                event: count - before.get(event, 0)
                for event, count in eqdb.meter.counts.items()
                if count != before.get(event, 0)
            }
            return result, delta

        # A list rides the vectorized run-grouped kernel; a generator is
        # rejected by _contiguous_runs and walks the scalar loop.
        grouped_result, grouped_delta = metered(ids)
        scalar_result, scalar_delta = metered(iter(ids))
        assert grouped_result == scalar_result
        assert grouped_delta == scalar_delta

    def test_full_range_matches_scalar(self, eqdb):
        table = eqdb.scheme.codeword_table
        maintainer = maintainer_of(eqdb)
        before = dict(eqdb.meter.counts)
        grouped = maintainer.audit_regions(range(table.region_count))
        mid = dict(eqdb.meter.counts)
        scalar = maintainer.audit_regions(iter(range(table.region_count)))
        after = dict(eqdb.meter.counts)
        assert grouped == scalar
        grouped_delta = {k: mid[k] - before.get(k, 0) for k in mid}
        scalar_delta = {k: after[k] - mid.get(k, 0) for k in after}
        assert {k: v for k, v in grouped_delta.items() if v} == {
            k: v for k, v in scalar_delta.items() if v
        }


class TestContiguousRuns:
    def test_range_and_lists(self):
        assert _contiguous_runs(range(3, 7), 10) == [(3, 7)]
        assert _contiguous_runs(range(0, 0), 10) == []
        assert _contiguous_runs([0, 1, 2, 5, 6, 9], 10) == [(0, 3), (5, 7), (9, 10)]
        assert _contiguous_runs([4], 10) == [(4, 5)]

    def test_rejects_non_ascending_or_out_of_bounds(self):
        assert _contiguous_runs([2, 1], 10) is None
        assert _contiguous_runs([1, 1], 10) is None
        assert _contiguous_runs([-1, 0], 10) is None
        assert _contiguous_runs([8, 9, 10], 10) is None
        assert _contiguous_runs(range(2, 12), 10) is None
        assert _contiguous_runs(range(0, 10, 2), 10) is None
        assert _contiguous_runs(iter([1, 2]), 10) is None
