"""Logical corruption repair: delete named transactions + taint tracing."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.logical import delete_transactions, trace_readers

from tests.conftest import insert_accounts


def setup_history(db_factory, scheme="read_logging"):
    """bad txn writes acct 1; carrier reads acct 1 and writes acct 2;
    bystander writes acct 3."""
    db = db_factory(scheme=scheme, region_size=32)
    slots = insert_accounts(db, 6)
    db.checkpoint()
    table = db.table("acct")
    txn = db.begin()
    table.update(txn, slots[1], {"balance": 9_999_999})  # fat-fingered entry
    db.commit(txn)
    bad = txn.txn_id
    txn = db.begin()
    value = table.read(txn, slots[1])["balance"]
    table.update(txn, slots[2], {"balance": value // 100})
    db.commit(txn)
    carrier = txn.txn_id
    txn = db.begin()
    table.update(txn, slots[3], {"balance": 333})
    db.commit(txn)
    bystander = txn.txn_id
    return db, slots, bad, carrier, bystander


class TestDeleteTransactions:
    def test_root_and_taint_deleted(self, db_factory):
        db, slots, bad, carrier, bystander = setup_history(db_factory)
        db.crash()
        db2, report = delete_transactions(db.config, [bad])
        assert report.mode == "delete-transaction-logical"
        assert bad in report.deleted_set
        assert carrier in report.deleted_set
        assert bystander not in report.deleted_set
        txn = db2.begin()
        table = db2.table("acct")
        assert table.read(txn, slots[1])["balance"] == 100  # bad entry gone
        assert table.read(txn, slots[2])["balance"] == 100  # taint gone
        assert table.read(txn, slots[3])["balance"] == 333  # bystander kept
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()

    def test_deleting_untainted_transaction_only(self, db_factory):
        db, slots, bad, carrier, bystander = setup_history(db_factory)
        db.crash()
        db2, report = delete_transactions(db.config, [bystander])
        assert report.deleted_set == {bystander}
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[3])["balance"] == 100
        # bad chain untouched (we only deleted the bystander)
        assert db2.table("acct").read(txn, slots[1])["balance"] == 9_999_999
        db2.commit(txn)
        db2.close()

    def test_works_under_checksummed_read_logging(self, db_factory):
        db, slots, bad, carrier, _b = setup_history(db_factory, "cw_read_logging")
        db.crash()
        db2, report = delete_transactions(db.config, [bad])
        assert {bad, carrier} <= report.deleted_set
        db2.close()

    def test_requires_read_logging(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 2)
        db.crash()
        with pytest.raises(RecoveryError, match="read logging"):
            delete_transactions(db.config, [1])

    def test_empty_root_set_rejected(self, db_factory):
        db = db_factory(scheme="read_logging")
        db.crash()
        with pytest.raises(RecoveryError):
            delete_transactions(db.config, [])

    def test_amendment_keeps_archives_valid(self, db_factory):
        from repro.recovery.archive import create_archive, recover_from_archive

        db, slots, bad, carrier, bystander = setup_history(db_factory)
        # (the archive must predate the bad transaction for the test to
        # be interesting; setup_history checkpoints before it, so archive
        # from a second db copy isn't possible -- re-run with archive)
        db.close()
        db2 = None
        db3 = None
        dbf = db_factory(scheme="read_logging", region_size=32)
        slots = insert_accounts(dbf, 6)
        info = create_archive(dbf, dbf.path("arch"))
        table = dbf.table("acct")
        txn = dbf.begin()
        table.update(txn, slots[1], {"balance": 77777})
        dbf.commit(txn)
        bad = txn.txn_id
        txn = dbf.begin()
        v = table.read(txn, slots[1])["balance"]
        table.update(txn, slots[2], {"balance": v + 1})
        dbf.commit(txn)
        carrier = txn.txn_id
        dbf.crash()
        db2, report = delete_transactions(dbf.config, [bad])
        assert {bad, carrier} <= report.deleted_set
        db2.crash()
        db3, replay = recover_from_archive(db2.config, info.path)
        assert {bad, carrier} <= replay.deleted_set
        txn = db3.begin()
        assert db3.table("acct").read(txn, slots[1])["balance"] == 100
        assert db3.table("acct").read(txn, slots[2])["balance"] == 100
        db3.commit(txn)
        db3.close()


class TestTraceReaders:
    def test_readers_of_range_reported(self, db_factory):
        db, slots, bad, carrier, bystander = setup_history(db_factory)
        address = db.table("acct").record_address(slots[1])
        hits = trace_readers(db, [(address, 32)])
        assert carrier in hits
        assert bystander not in hits
        lsn, addr, length = hits[carrier][0]
        assert addr <= address < addr + length

    def test_from_lsn_filters(self, db_factory):
        db, slots, bad, carrier, _b = setup_history(db_factory)
        address = db.table("acct").record_address(slots[1])
        all_hits = trace_readers(db, [(address, 32)])
        late_hits = trace_readers(db, [(address, 32)], from_lsn=10**9)
        assert all_hits and not late_hits

    def test_empty_ranges(self, db_factory):
        db, *_ = setup_history(db_factory)
        assert trace_readers(db, []) == {}
