"""Archives and media recovery with log amendment (Section 4.3 extension)."""

import pytest

from repro import Database, FaultInjector
from repro.errors import RecoveryError
from repro.recovery.archive import create_archive, read_archive_info, recover_from_archive
from repro.wal.records import AmendRecord

from tests.conftest import insert_accounts


def archive_dir(db, name="arch"):
    return db.path(name)


class TestCreateArchive:
    def test_archive_manifest_and_files(self, db):
        insert_accounts(db, 3)
        info = create_archive(db, archive_dir(db))
        loaded = read_archive_info(info.path)
        assert loaded.ck_end == info.ck_end > 0
        assert loaded.image in ("A", "B")

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(RecoveryError):
            read_archive_info(str(tmp_path / "nope"))

    def test_archive_of_corrupt_image_rejected(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 3)
        FaultInjector(db, seed=1).wild_write(
            db.table("acct").record_address(0), 8
        )
        with pytest.raises(RecoveryError):
            create_archive(db, archive_dir(db))


class TestPlainMediaRecovery:
    def test_replay_reaches_current_state(self, db):
        slots = insert_accounts(db, 5)
        info = create_archive(db, archive_dir(db))
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 777})
        db.table("acct").insert(txn, {"id": 50, "balance": 50})
        db.commit(txn)
        db.crash()
        db2, report = recover_from_archive(db.config, info.path)
        assert report.mode == "normal"
        txn = db2.begin()
        table = db2.table("acct")
        assert table.read(txn, slots[0])["balance"] == 777
        assert table.lookup(txn, 50) is not None
        db2.commit(txn)
        db2.close()

    def test_replay_rolls_back_in_flight_work(self, db):
        slots = insert_accounts(db, 3)
        info = create_archive(db, archive_dir(db))
        txn = db.begin()
        db.table("acct").update(txn, slots[1], {"balance": 999})
        db.checkpoint()  # records reach the stable log; txn never commits
        db.crash()
        db2, _report = recover_from_archive(db.config, info.path)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[1])["balance"] == 100
        db2.commit(txn)
        db2.close()


class TestAmendedMediaRecovery:
    """The core scenario: corruption recovery happens AFTER the archive;
    the amendment keeps the archive usable."""

    def corruption_episode(self, db_factory, scheme):
        # Conflict-consistent mode is region-granular: keep regions at one
        # record so bystander transactions are not conservatively deleted.
        params = {} if scheme == "cw_read_logging" else {"region_size": 32}
        db = db_factory(scheme=scheme, **params)
        slots = insert_accounts(db, 10)
        info = create_archive(db, archive_dir(db))
        table = db.table("acct")
        # Clean committed work after the archive.
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 111})
        db.commit(txn)
        # Corruption + carrier.
        FaultInjector(db, seed=3).wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        bogus = table.read(txn, slots[1])["balance"]
        table.update(txn, slots[2], {"balance": bogus})
        db.commit(txn)
        carrier = txn.txn_id
        report = db.audit()
        assert not report.clean
        db.crash_with_corruption(report)
        db2, recovery = Database.recover(db.config)
        assert carrier in recovery.deleted_set
        # Post-recovery committed work.
        txn = db2.begin()
        db2.table("acct").update(txn, slots[3], {"balance": 333})
        db2.commit(txn)
        return db2, info, slots, carrier

    def test_amendment_written_to_log(self, db_factory):
        db2, _info, _slots, _carrier = self.corruption_episode(
            db_factory, "cw_read_logging"
        )
        amends = [
            r for _l, r in db2.system_log.scan() if isinstance(r, AmendRecord)
        ]
        assert amends, "corruption recovery must amend the log"
        db2.close()

    @pytest.mark.parametrize("scheme", ["cw_read_logging", "read_logging"])
    def test_archive_survives_corruption_recovery(self, db_factory, scheme):
        db2, info, slots, carrier = self.corruption_episode(db_factory, scheme)
        db2.crash()
        db3, report = recover_from_archive(db2.config, info.path)
        txn = db3.begin()
        table = db3.table("acct")
        # Pre-corruption commit survives; carried write deleted again;
        # direct corruption absent; post-recovery work replayed.
        assert table.read(txn, slots[0])["balance"] == 111
        assert table.read(txn, slots[2])["balance"] == 100
        assert table.read(txn, slots[1])["balance"] == 100
        assert table.read(txn, slots[3])["balance"] == 333
        db3.commit(txn)
        assert db3.audit().clean
        db3.close()

    def test_post_recovery_txns_not_wrongly_recruited(self, db_factory):
        """After the amend point the CorruptDataTable is healed, so a
        post-recovery transaction touching the once-corrupt range
        survives the archive replay."""
        db = db_factory(scheme="read_logging", region_size=32)
        slots = insert_accounts(db, 10)
        info = create_archive(db, archive_dir(db))
        table = db.table("acct")
        FaultInjector(db, seed=3).wild_write(table.record_address(slots[1]) + 8, 8)
        report = db.audit()
        db.crash_with_corruption(report)
        db2, _rec = Database.recover(db.config)
        # Post-recovery transaction writes INTO the once-corrupt record.
        txn = db2.begin()
        db2.table("acct").update(txn, slots[1], {"balance": 555})
        db2.commit(txn)
        healed_txn = txn.txn_id
        db2.crash()
        db3, replay = recover_from_archive(db2.config, info.path)
        assert healed_txn not in replay.deleted_set
        txn = db3.begin()
        assert db3.table("acct").read(txn, slots[1])["balance"] == 555
        db3.commit(txn)
        db3.close()


class TestAmendRecordCodec:
    def test_roundtrip(self):
        from repro.wal.records import decode_record, encode_record

        record = AmendRecord(
            7, corrupt_ranges=((100, 64), (4096, 8192)), audit_sn=42, use_checksums=True
        )
        decoded, _ = decode_record(encode_record(record))
        assert decoded == record

    def test_empty_ranges(self):
        from repro.wal.records import decode_record, encode_record

        record = AmendRecord(0, corrupt_ranges=(), audit_sn=0, use_checksums=False)
        decoded, _ = decode_record(encode_record(record))
        assert decoded == record
