"""Latches: modes, reentrancy, upgrades, cross-thread blocking."""

import threading
import time

import pytest

from repro.errors import LatchError
from repro.txn.latches import EXCLUSIVE, Latch, LatchTable, SHARED


class TestSingleThread:
    def test_exclusive_acquire_release(self):
        latch = Latch("t")
        latch.acquire(EXCLUSIVE)
        assert latch.held_exclusive()
        latch.release()
        assert not latch.held()

    def test_shared_acquire_release(self):
        latch = Latch("t")
        latch.acquire(SHARED)
        assert latch.held() and not latch.held_exclusive()
        latch.release()

    def test_reentrant_exclusive(self):
        latch = Latch("t")
        latch.acquire(EXCLUSIVE)
        latch.acquire(EXCLUSIVE)
        latch.release()
        assert latch.held_exclusive()
        latch.release()
        assert not latch.held()

    def test_exclusive_owner_may_nest_shared(self):
        latch = Latch("t")
        latch.acquire(EXCLUSIVE)
        latch.acquire(SHARED)  # folded into exclusive depth
        latch.release()
        latch.release()
        assert not latch.held()

    def test_upgrade_as_sole_shared_holder(self):
        latch = Latch("t")
        latch.acquire(SHARED)
        latch.acquire(EXCLUSIVE)
        assert latch.held_exclusive()
        latch.release()
        latch.release()
        assert not latch.held()

    def test_release_without_hold_raises(self):
        with pytest.raises(LatchError):
            Latch("t").release()

    def test_bad_mode_rejected(self):
        with pytest.raises(LatchError):
            Latch("t").acquire("Z")

    def test_context_managers(self):
        latch = Latch("t")
        with latch.exclusive():
            assert latch.held_exclusive()
        with latch.shared():
            assert latch.held()
        assert not latch.held()

    def test_acquire_count(self):
        latch = Latch("t")
        with latch.shared():
            pass
        with latch.exclusive():
            pass
        assert latch.acquire_count == 2


class TestCrossThread:
    def _acquire_in_thread(self, latch: Latch, mode: str, timeout=0.2):
        """Try to acquire in another thread; returns success flag."""
        result = {}

        def worker():
            try:
                latch.acquire(mode, timeout=timeout)
                result["ok"] = True
                latch.release()
            except LatchError:
                result["ok"] = False

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        return result["ok"]

    def test_shared_holders_coexist(self):
        latch = Latch("t")
        latch.acquire(SHARED)
        assert self._acquire_in_thread(latch, SHARED)
        latch.release()

    def test_exclusive_blocks_other_threads(self):
        latch = Latch("t")
        latch.acquire(EXCLUSIVE)
        assert not self._acquire_in_thread(latch, SHARED)
        assert not self._acquire_in_thread(latch, EXCLUSIVE)
        latch.release()

    def test_shared_blocks_foreign_exclusive(self):
        latch = Latch("t")
        latch.acquire(SHARED)
        assert not self._acquire_in_thread(latch, EXCLUSIVE)
        latch.release()

    def test_waiter_wakes_on_release(self):
        latch = Latch("t")
        latch.acquire(EXCLUSIVE)
        acquired = threading.Event()

        def worker():
            latch.acquire(EXCLUSIVE, timeout=5.0)
            acquired.set()
            latch.release()

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        latch.release()
        thread.join(timeout=5.0)
        assert acquired.is_set()


class TestLatchTable:
    def test_same_key_same_latch(self):
        table = LatchTable("protection")
        assert table.latch(3) is table.latch(3)

    def test_different_keys_different_latches(self):
        table = LatchTable("protection")
        assert table.latch(1) is not table.latch(2)
        assert len(table) == 2

    def test_latch_names_carry_prefix(self):
        table = LatchTable("codeword")
        assert "codeword[5]" in repr(table.latch(5))
