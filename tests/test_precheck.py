"""Read Prechecking: prevention of transaction-carried corruption."""

import pytest

from repro.errors import CorruptionDetected

from tests.conftest import insert_accounts


@pytest.fixture
def pdb(db_factory):
    return db_factory(scheme="precheck", region_size=64)


class TestPrevention:
    def test_read_of_corrupted_record_raises(self, pdb):
        slots = insert_accounts(pdb, 5)
        table = pdb.table("acct")
        pdb.memory.poke(table.record_address(slots[2]), b"\xbb" * 8)
        txn = pdb.begin()
        with pytest.raises(CorruptionDetected) as exc:
            table.read(txn, slots[2])
        assert exc.value.region_ids  # names the failing region

    def test_clean_records_still_readable(self, pdb):
        slots = insert_accounts(pdb, 5)
        table = pdb.table("acct")
        # Corrupt record 4 (its own 64-byte region), record 0 unaffected.
        pdb.memory.poke(table.record_address(slots[4]), b"\xbb" * 8)
        txn = pdb.begin()
        assert table.read(txn, slots[0])["balance"] == 100
        pdb.commit(txn)

    def test_update_of_corrupted_record_raises(self, pdb):
        """Updates read the old record first, so the precheck fires."""
        slots = insert_accounts(pdb, 6)
        table = pdb.table("acct")
        # Records are 32 bytes, regions 64: records 4-5 share a region
        # disjoint from records 0-1's region.
        pdb.memory.poke(table.record_address(slots[4]), b"\xbb" * 4)
        txn = pdb.begin()
        with pytest.raises(CorruptionDetected):
            table.update(txn, slots[4], {"balance": 1})
        # The failed operation was rolled back; transaction is still usable.
        table.update(txn, slots[0], {"balance": 1})
        pdb.commit(txn)

    def test_corruption_of_control_segment_detected_on_read(self, pdb):
        """Allocation bitmaps are protected data too."""
        table = pdb.table("acct")
        insert_accounts(pdb, 3)
        pdb.memory.poke(table.allocator.bitmap_base, b"\xff")
        txn = pdb.begin()
        with pytest.raises(CorruptionDetected):
            table.insert(txn, {"id": 99, "balance": 0})  # reads the bitmap
        pdb.abort(txn)

    def test_failure_counters(self, pdb):
        slots = insert_accounts(pdb, 2)
        table = pdb.table("acct")
        pdb.memory.poke(table.record_address(slots[0]), b"\xee")
        txn = pdb.begin()
        with pytest.raises(CorruptionDetected):
            table.read(txn, slots[0])
        assert pdb.scheme.precheck_failures == 1
        assert pdb.scheme.precheck_count > 0


class TestCheckCache:
    def test_region_checked_once_per_operation(self, pdb):
        slots = insert_accounts(pdb, 1)
        table = pdb.table("acct")
        txn = pdb.begin()
        before = pdb.scheme.precheck_count
        pdb.manager.begin_operation(txn, "op")
        pdb.manager.read(txn, table.record_address(slots[0]), 8)
        mid = pdb.scheme.precheck_count
        pdb.manager.read(txn, table.record_address(slots[0]), 8)
        assert pdb.scheme.precheck_count == mid > before
        from repro.wal.records import LogicalUndo

        pdb.manager.commit_operation(txn, LogicalUndo("noop"))
        pdb.commit(txn)

    def test_cache_cleared_at_operation_boundary(self, pdb):
        slots = insert_accounts(pdb, 1)
        table = pdb.table("acct")
        address = table.record_address(slots[0])
        from repro.wal.records import LogicalUndo

        txn = pdb.begin()
        pdb.manager.begin_operation(txn, "op1")
        pdb.manager.read(txn, address, 8)
        pdb.manager.commit_operation(txn, LogicalUndo("noop"))
        count_after_op1 = pdb.scheme.precheck_count
        pdb.manager.begin_operation(txn, "op2")
        pdb.manager.read(txn, address, 8)
        assert pdb.scheme.precheck_count > count_after_op1
        pdb.manager.commit_operation(txn, LogicalUndo("noop"))
        pdb.commit(txn)


class TestRegionGranularity:
    def test_read_spanning_regions_checks_both(self, db_factory):
        """A 32-byte record in 16-byte regions spans two regions."""
        db = db_factory(scheme="precheck", region_size=16)
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        address = table.record_address(slots[0])
        regions = db.scheme.codeword_table.regions_spanning(
            address, table.schema.record_size
        )
        assert len(regions) == 2
        txn = db.begin()
        before = db.scheme.precheck_count
        db.manager.begin_operation(txn, "op")
        db.manager.read(txn, address, table.schema.record_size)
        assert db.scheme.precheck_count - before == len(regions)
        from repro.wal.records import LogicalUndo

        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)

    def test_corruption_in_sibling_region_not_reported_for_other_read(
        self, db_factory
    ):
        """With 32-byte regions each record is exactly one region."""
        db = db_factory(scheme="precheck", region_size=32)
        slots = insert_accounts(db, 10)
        table = db.table("acct")
        db.memory.poke(table.record_address(slots[5]) + 8, b"\x11")
        txn = db.begin()
        assert table.read(txn, slots[9])["balance"] == 100
        with pytest.raises(CorruptionDetected):
            table.read(txn, slots[5])
        db.abort(txn)
