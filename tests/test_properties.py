"""End-to-end property-based tests.

Two system-level invariants from the paper:

* crash/recovery equivalence -- after a crash, exactly the committed
  transactions' effects are visible (Section 2.1's "repeating history");
* delete-transaction correctness -- after corruption recovery, the
  database matches a conflict-/view-consistent delete history and no
  injected corruption survives (Section 4).
"""

from __future__ import annotations

import shutil

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, DBConfig, FaultInjector
from repro.recovery.history import (
    check_conflict_consistent,
    check_view_consistent,
    expected_final_state,
)

from tests.conftest import ACCT_SCHEMA

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

# One scripted action: (kind, key, value)
action = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 39), st.integers(0, 1000)),
    st.tuples(st.just("update"), st.integers(0, 39), st.integers(0, 1000)),
    st.tuples(st.just("delete"), st.integers(0, 39), st.just(0)),
    st.tuples(st.just("read"), st.integers(0, 39), st.just(0)),
    st.tuples(st.just("commit"), st.just(0), st.just(0)),
    st.tuples(st.just("abort"), st.just(0), st.just(0)),
    st.tuples(st.just("checkpoint"), st.just(0), st.just(0)),
)


def fresh_db(tmp_path, scheme, sub):
    path = tmp_path / sub
    if path.exists():
        shutil.rmtree(path)
    config = DBConfig(dir=str(path), scheme=scheme, record_history=True)
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 80, key_field="id")
    db.start()
    return db


class Model:
    """Committed-state model the recovered database must match."""

    def __init__(self) -> None:
        self.committed: dict[int, int] = {}
        self.pending: dict[int, int | None] = {}

    def apply(self, kind, key, value):
        if kind == "insert":
            self.pending[key] = value
        elif kind == "update":
            self.pending[key] = value
        elif kind == "delete":
            self.pending[key] = None

    def commit(self):
        for key, value in self.pending.items():
            if value is None:
                self.committed.pop(key, None)
            else:
                self.committed[key] = value
        self.pending.clear()

    def abort(self):
        self.pending.clear()

    def view(self) -> dict[int, int]:
        merged = dict(self.committed)
        for key, value in self.pending.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        return merged


def run_script(db, script):
    """Drive the database and a model through a random script."""
    model = Model()
    table = db.table("acct")
    txn = db.begin()
    for kind, key, value in script:
        view = model.view()
        if kind == "insert":
            if key in view:
                continue
            table.insert(txn, {"id": key, "balance": value})
            model.apply(kind, key, value)
        elif kind == "update":
            if key not in view:
                continue
            table.update(txn, table.lookup(txn, key), {"balance": value})
            model.apply(kind, key, value)
        elif kind == "delete":
            if key not in view:
                continue
            table.delete(txn, table.lookup(txn, key))
            model.apply(kind, key, 0)
        elif kind == "read":
            if key in view:
                row = table.read(txn, table.lookup(txn, key))
                assert row["balance"] == view[key]
        elif kind == "commit":
            db.commit(txn)
            model.commit()
            txn = db.begin()
        elif kind == "abort":
            db.abort(txn)
            model.abort()
            txn = db.begin()
        elif kind == "checkpoint":
            db.checkpoint()
    # leave the last transaction uncommitted: it must disappear at crash
    return model


def committed_state(db) -> dict[int, int]:
    table = db.table("acct")
    txn = db.begin()
    state = {}
    for slot in table.scan_slots(txn):
        row = table.read(txn, slot)
        state[row["id"]] = row["balance"]
    db.commit(txn)
    return state


class TestCrashRecoveryEquivalence:
    @SLOW
    @given(script=st.lists(action, max_size=40))
    def test_recovered_state_is_committed_prefix(self, tmp_path, script):
        db = fresh_db(tmp_path, "baseline", "crash")
        try:
            model = run_script(db, script)
            db.crash()
            db2, report = Database.recover(db.config)
            assert report.mode == "normal"
            assert committed_state(db2) == model.committed
            db2.close()
        finally:
            db.close()

    @SLOW
    @given(script=st.lists(action, max_size=30))
    def test_recovery_with_codewords_stays_auditable(self, tmp_path, script):
        db = fresh_db(tmp_path, "data_cw", "cw")
        try:
            model = run_script(db, script)
            db.crash()
            db2, _ = Database.recover(db.config)
            assert db2.audit().clean
            assert committed_state(db2) == model.committed
            db2.close()
        finally:
            db.close()


corruption_script = st.lists(
    st.tuples(
        st.sampled_from(["read_then_write", "write", "wild"]),
        st.integers(0, 19),
        st.integers(0, 19),
    ),
    min_size=3,
    max_size=15,
)


class TestDeleteTransactionProperties:
    @SLOW
    @given(script=corruption_script, fault_at=st.integers(0, 5))
    def test_view_consistent_recovery(self, tmp_path, script, fault_at):
        db = fresh_db(tmp_path, "cw_read_logging", "del")
        try:
            table = db.table("acct")
            txn = db.begin()
            slots = {
                i: table.insert(txn, {"id": i, "balance": 100}) for i in range(20)
            }
            db.commit(txn)
            db.checkpoint()
            injector = FaultInjector(db, seed=fault_at)
            injected = False
            for i, (kind, a, b) in enumerate(script):
                if i == fault_at:
                    injector.wild_write(
                        table.record_address(slots[a]) + 8, 8
                    )
                    injected = True
                    continue
                txn = db.begin()
                if kind == "read_then_write":
                    value = table.read(txn, slots[a])["balance"]
                    table.update(txn, slots[b], {"balance": value})
                elif kind == "write":
                    table.update(txn, slots[b], {"balance": a * 7})
                db.commit(txn)
            if not injected:
                injector.wild_write(table.record_address(slots[0]) + 8, 8)
            report = db.audit()
            history = db.history
            if report.clean:
                # The wild write may have hit bytes that fold to the same
                # codeword only with ~2^-32 probability; treat as clean run.
                return
            db.crash_with_corruption(report)
            db2, recovery = Database.recover(db.config)
            deleted = recovery.deleted_set
            # The checksum variant guarantees VIEW-consistency only: a
            # deleted transaction that wrote the same value the delete
            # history holds does not recruit its readers ("not propagating
            # corruption when the corrupt transaction wrote the same data
            # ... as it would have had in the delete-history", Section 4.3
            # last paragraph) -- which can violate conflict-consistency.
            # Hypothesis actually finds such schedules.
            assert check_view_consistent(history, deleted) == []
            assert db2.audit().clean
            # The recovered image matches the delete history's final state.
            expected = expected_final_state(history, deleted)
            txn = db2.begin()
            for (tbl, slot), value in expected.items():
                if value is None:
                    continue
                assert db2.table(tbl).read_bytes(txn, slot) == value
            db2.commit(txn)
            db2.close()
        finally:
            db.close()

    @SLOW
    @given(script=corruption_script, fault_at=st.integers(0, 5))
    def test_conflict_consistent_recovery(self, tmp_path, script, fault_at):
        db = fresh_db(tmp_path, "read_logging", "del2")
        db.scheme.region_size  # plain variant, large regions
        try:
            table = db.table("acct")
            txn = db.begin()
            slots = {
                i: table.insert(txn, {"id": i, "balance": 100}) for i in range(20)
            }
            db.commit(txn)
            db.checkpoint()
            injector = FaultInjector(db, seed=fault_at)
            for i, (kind, a, b) in enumerate(script):
                if i == fault_at:
                    injector.wild_write(table.record_address(slots[a]) + 8, 8)
                    continue
                txn = db.begin()
                if kind == "read_then_write":
                    value = table.read(txn, slots[a])["balance"]
                    table.update(txn, slots[b], {"balance": value})
                elif kind == "write":
                    table.update(txn, slots[b], {"balance": a * 7})
                db.commit(txn)
            report = db.audit()
            history = db.history
            if report.clean:
                return
            db.crash_with_corruption(report)
            db2, recovery = Database.recover(db.config)
            assert check_conflict_consistent(history, recovery.deleted_set) == []
            assert db2.audit().clean
            db2.close()
        finally:
            db.close()
