"""Recovery mode selection per scheme and corruption state."""

from repro import Database, FaultInjector

from tests.conftest import insert_accounts


def crash_with_corruption(db, slot=1):
    table = db.table("acct")
    FaultInjector(db, seed=1).wild_write(table.record_address(slot) + 8, 8)
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)


class TestModeSelection:
    def test_plain_crash_baseline_is_normal(self, db):
        insert_accounts(db, 2)
        db.crash()
        _db2, report = Database.recover(db.config)
        assert report.mode == "normal"

    def test_plain_crash_data_cw_is_normal(self, db_factory):
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 2)
        db.crash()
        _db2, report = Database.recover(db.config)
        assert report.mode == "normal"

    def test_plain_crash_with_checksums_runs_view_recovery(self, db_factory):
        """Section 4.3: with codewords in read records, corruption recovery
        should run on every restart."""
        db = db_factory(scheme="cw_read_logging")
        insert_accounts(db, 2)
        db.crash()
        _db2, report = Database.recover(db.config)
        assert report.mode == "delete-transaction-view"

    def test_noted_corruption_with_read_logging(self, db_factory):
        db = db_factory(scheme="read_logging")
        insert_accounts(db, 5)
        db.checkpoint()
        crash_with_corruption(db)
        _db2, report = Database.recover(db.config)
        assert report.mode == "delete-transaction"

    def test_noted_corruption_without_read_logging_is_writes_only(self, db_factory):
        """Detection-only schemes get the weaker writes-only tracing and
        the mode says so."""
        db = db_factory(scheme="data_cw")
        insert_accounts(db, 5)
        db.checkpoint()
        crash_with_corruption(db)
        db2, report = Database.recover(db.config)
        assert report.mode == "delete-transaction-writes-only"
        # Direct corruption is still gone (it was never in the log).
        assert db2.audit().clean
        txn = db2.begin()
        assert db2.table("acct").read(txn, 1)["balance"] == 100
        db2.commit(txn)
        db2.close()

    def test_writes_only_mode_misses_read_carried_corruption(self, db_factory):
        """The documented limitation: without read records, a transaction
        that read corrupt data and wrote elsewhere survives -- exactly why
        the paper pays 17% for read logging.  Regions are kept small so
        the carrier's write does not overlap the corrupt region (at large
        regions the conservative write-overlap rule would catch it)."""
        db = db_factory(scheme="data_cw", region_size=32)
        slots = insert_accounts(db, 5)
        db.checkpoint()
        table = db.table("acct")
        FaultInjector(db, seed=1).wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        bogus = table.read(txn, slots[1])["balance"]  # NOT logged
        table.update(txn, slots[2], {"balance": bogus})
        db.commit(txn)
        carrier = txn.txn_id
        report = db.audit()
        db.crash_with_corruption(report)
        db2, recovery = Database.recover(db.config)
        # The carrier is NOT deleted and the carried value survives.
        assert carrier not in recovery.deleted_set
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[2])["balance"] == bogus
        db2.commit(txn)
        db2.close()

    def test_read_logging_catches_the_same_scenario(self, db_factory):
        db = db_factory(scheme="read_logging", region_size=32)
        slots = insert_accounts(db, 5)
        db.checkpoint()
        table = db.table("acct")
        FaultInjector(db, seed=1).wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        bogus = table.read(txn, slots[1])["balance"]  # logged this time
        table.update(txn, slots[2], {"balance": bogus})
        db.commit(txn)
        carrier = txn.txn_id
        report = db.audit()
        db.crash_with_corruption(report)
        db2, recovery = Database.recover(db.config)
        assert carrier in recovery.deleted_set
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[2])["balance"] == 100
        db2.commit(txn)
        db2.close()
