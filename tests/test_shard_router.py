"""The shard router: partitioning, quarantine isolation, the serve-protocol
front-end, and process-mode workers."""

from __future__ import annotations

import pytest

from repro import Field, FieldType, Schema
from repro.errors import ShardError
from repro.serve.protocol import Request
from repro.shard import (
    PartitionSpec,
    ShardedConfig,
    ShardedDatabase,
    ShardRouter,
    shard_capacity,
)

ACCOUNT_SCHEMA = Schema(
    [
        Field("aid", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)
TABLE_DEFS = [("account", ACCOUNT_SCHEMA, 64, "aid")]


def _make(tmp_path, name, n_shards=2, mode="inproc", branches=4, **kwargs):
    config = ShardedConfig(
        dir=str(tmp_path / name),
        n_shards=n_shards,
        mode=mode,
        branches=branches,
        scheme="data_codeword",
        **kwargs,
    )
    return ShardedDatabase.create(config, TABLE_DEFS), config


def _load_accounts(db, count=12, balance=100):
    for aid in range(count):
        db.submit_txn([("insert", "account", {"aid": aid, "balance": balance})])


class TestPartitionSpec:
    def test_branch_then_shard(self):
        spec = PartitionSpec(branches=4, n_shards=2)
        assert spec.shard_for_key("account", 5) == (5 % 4) % 2
        assert spec.shard_for_key("branch", 3) == 3 % 2
        assert spec.shard_for_row("history", {"bid": 2, "hid": 9}) == 0

    def test_single_branch_op_is_single_shard(self):
        spec = PartitionSpec(branches=8, n_shards=4)
        for b in range(8):
            shards = {
                spec.shard_for_key("account", b + 8 * 3),
                spec.shard_for_key("teller", b + 8 * 1),
                spec.shard_for_key("branch", b),
                spec.shard_for_row("history", {"bid": b}),
            }
            assert len(shards) == 1

    def test_capacity_exact_at_one_shard(self):
        assert shard_capacity(100, 1) == 100
        # With more shards: even split plus slack, never losing rows.
        assert shard_capacity(100, 4) >= 25
        assert shard_capacity(1, 4) >= 1

    def test_resharded_keeps_branch_mapping(self):
        spec = PartitionSpec(branches=6, n_shards=2)
        wider = spec.resharded(3)
        assert wider.branches == 6
        for key in range(12):
            assert spec.branch_for_key("account", key) == wider.branch_for_key(
                "account", key
            )


class TestRouting:
    def test_ops_group_by_shard(self, tmp_path):
        db, _ = _make(tmp_path, "split")
        groups = db._split(
            [
                ("add", "account", 0, "balance", 1),  # branch 0 -> shard 0
                ("add", "account", 1, "balance", 1),  # branch 1 -> shard 1
                ("add", "account", 2, "balance", 1),  # branch 2 -> shard 0
            ]
        )
        assert set(groups) == {0, 1}
        assert len(groups[0]) == 2 and len(groups[1]) == 1
        db.close()

    def test_charge_rides_first_routed_shard(self, tmp_path):
        db, _ = _make(tmp_path, "charge")
        groups = db._split(
            [
                ("charge", "base_operation"),
                ("add", "account", 1, "balance", 1),
            ]
        )
        assert set(groups) == {1}
        assert groups[1][0] == ("charge", "base_operation")
        db.close()

    def test_row_counts_and_sums_merge_across_shards(self, tmp_path):
        db, _ = _make(tmp_path, "merge")
        _load_accounts(db, count=10, balance=7)
        assert db.row_count("account") == 10
        assert db.sum_field("account", "balance") == 70
        db.close()

    def test_pipelined_results_match_sync(self, tmp_path):
        db, _ = _make(tmp_path, "pipe")
        _load_accounts(db, count=8)
        for aid in range(8):
            db.submit_txn_nowait([("add", "account", aid, "balance", aid)])
        db.drain()
        assert db.sum_field("account", "balance") == 8 * 100 + sum(range(8))
        db.close()


class TestQuarantineIsolation:
    """A wild write into one shard must not disturb the others."""

    def _corrupted(self, tmp_path, name, mode="inproc"):
        db, config = _make(
            tmp_path,
            name,
            mode=mode,
            quarantine=True,
            quarantine_repair=True,
            scheme_params={"region_size": 64},
        )
        _load_accounts(db, count=12)
        db.checkpoint_all()
        # aid 0 -> branch 0 -> shard 0; offset 8 is the balance field.
        address = db.wild_write("account", 0, 8, b"\xff" * 8)
        return db, config, address

    def test_audit_flags_only_the_victim_shard(self, tmp_path):
        db, _, address = self._corrupted(tmp_path, "flag")
        audits = db.audit_all()
        clean0, _regions0, ranges0 = audits[0]
        assert not clean0
        assert any(start <= address < start + length for start, length in ranges0)
        assert all(clean for clean, _, _ in audits[1:])
        db.close()

    def test_other_shard_serves_while_victim_quarantined(self, tmp_path):
        db, _, _ = self._corrupted(tmp_path, "serve")
        db.audit_all()  # quarantines the corrupt region on shard 0
        assert len(db.quarantined()[0]) > 0
        # Shard 1 (odd branches) keeps serving reads and writes.
        db.submit_txn([("add", "account", 1, "balance", 11)])
        row = db.submit_txn([("query", "account", 1)])[0]
        assert row["balance"] == 111
        db.close()

    def test_repair_restores_and_recertifies(self, tmp_path):
        db, _, _ = self._corrupted(tmp_path, "repair")
        db.audit_all()
        assert db.repair_all() > 0
        assert all(clean for clean, _, _ in db.audit_all())
        row = db.submit_txn([("query", "account", 0)])[0]
        assert row["balance"] == 100  # checkpoint value restored
        db.close()


class TestShardRouterProtocol:
    """The repro/serve request/response front over a sharded database."""

    def _session(self, tmp_path, name):
        db, _ = _make(tmp_path, name)
        return db, ShardRouter(db)

    def test_insert_lookup_query_roundtrip(self, tmp_path):
        db, router = self._session(tmp_path, "crud")
        assert router.handle(Request(op="begin")).ok
        slot = router.handle(
            Request(op="insert", table="account", values={"aid": 3, "balance": 9})
        ).value
        assert router.handle(Request(op="commit")).ok
        router.handle(Request(op="begin"))
        assert router.handle(Request(op="lookup", table="account", key=3)).value == slot
        row = router.handle(Request(op="query", table="account", key=3)).value
        assert row["balance"] == 9
        read = router.handle(Request(op="read", table="account", slot=slot)).value
        assert read["aid"] == 3
        router.handle(Request(op="commit"))
        db.close()

    def test_slot_tags_route_back_to_owning_shard(self, tmp_path):
        db, router = self._session(tmp_path, "slots")
        router.handle(Request(op="begin"))
        slots = {
            aid: router.handle(
                Request(op="insert", table="account", values={"aid": aid, "balance": 0})
            ).value
            for aid in range(4)
        }
        router.handle(Request(op="commit"))
        for aid, slot in slots.items():
            shard_id, _local = router._decode_slot(slot)
            assert shard_id == db.partition.shard_for_key("account", aid)
            router.handle(Request(op="begin"))
            router.handle(
                Request(op="update", table="account", slot=slot, values={"balance": aid})
            )
            router.handle(Request(op="commit"))
        assert db.sum_field("account", "balance") == sum(range(4))
        db.close()

    def test_cross_shard_session_commits_atomically(self, tmp_path):
        db, router = self._session(tmp_path, "xshard")
        router.handle(Request(op="begin"))
        router.handle(
            Request(op="insert", table="account", values={"aid": 0, "balance": 1})
        )
        router.handle(
            Request(op="insert", table="account", values={"aid": 1, "balance": 2})
        )
        assert len(router._open_txns) == 2  # touched both shards
        assert router.handle(Request(op="commit")).ok
        assert len(db.decisions) == 1  # went through 2PC
        assert db.sum_field("account", "balance") == 3
        db.close()

    def test_abort_rolls_back_every_touched_shard(self, tmp_path):
        db, router = self._session(tmp_path, "abort")
        router.handle(Request(op="begin"))
        router.handle(
            Request(op="insert", table="account", values={"aid": 0, "balance": 1})
        )
        router.handle(
            Request(op="insert", table="account", values={"aid": 1, "balance": 2})
        )
        assert router.handle(Request(op="abort")).ok
        assert db.row_count("account") == 0
        db.close()

    def test_error_rolls_back_and_reports(self, tmp_path):
        db, router = self._session(tmp_path, "err")
        response = router.handle(Request(op="query", table="account", key=1))
        assert not response.ok  # no begin first
        assert response.error == "ShardError"
        db.close()

    def test_ops_require_begin(self, tmp_path):
        db, router = self._session(tmp_path, "nobegin")
        with pytest.raises(ShardError):
            router._require_txn()
        db.close()


class TestProcessMode:
    """One worker process per shard; kept small (one spawn per test)."""

    def test_roundtrip_and_audit(self, tmp_path):
        db, _ = _make(tmp_path, "proc", mode="process")
        try:
            _load_accounts(db, count=8)
            db.submit_txn([("add", "account", 3, "balance", 23)])
            assert db.submit_txn([("query", "account", 3)])[0]["balance"] == 123
            assert db.sum_field("account", "balance") == 8 * 100 + 23
            assert all(clean for clean, _, _ in db.audit_all())
        finally:
            db.close()

    def test_crash_shard_then_parallel_recover(self, tmp_path):
        db, config = _make(tmp_path, "crashrec", mode="process")
        _load_accounts(db, count=8)
        db.call_all(("flush",))
        db.crash()
        recovered, reports = ShardedDatabase.recover(config)
        try:
            assert len(reports) == 2
            assert all("recovery_cpu_s" in r for r in reports)
            assert recovered.sum_field("account", "balance") == 8 * 100
            assert all(clean for clean, _, _ in recovered.audit_all())
        finally:
            recovered.close()
