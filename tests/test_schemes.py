"""Protection scheme framework: factory, metadata, shared maintenance."""

import pytest

from repro.core import make_scheme, SCHEME_NAMES
from repro.core.data_codeword import DataCodewordScheme
from repro.core.deferred import DeferredMaintenanceScheme
from repro.core.hardware import HardwareProtectionScheme
from repro.core.precheck import ReadPrecheckScheme
from repro.core.read_logging import ReadLoggingScheme
from repro.core.schemes import BaselineScheme
from repro.errors import ConfigError

from tests.conftest import insert_accounts


class TestFactory:
    def test_all_names_construct(self):
        for name in SCHEME_NAMES:
            assert make_scheme(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("magic")

    def test_baseline(self):
        scheme = make_scheme("baseline")
        assert isinstance(scheme, BaselineScheme)
        assert scheme.direct_protection == "none"

    def test_precheck_region_size(self):
        scheme = make_scheme("precheck", region_size=512)
        assert isinstance(scheme, ReadPrecheckScheme)
        assert scheme.region_size == 512

    def test_data_cw_defaults_to_large_regions(self):
        scheme = make_scheme("data_cw")
        assert isinstance(scheme, DataCodewordScheme)
        assert scheme.region_size == 65536

    def test_read_logging_variants(self):
        plain = make_scheme("read_logging")
        checksummed = make_scheme("cw_read_logging")
        assert isinstance(plain, ReadLoggingScheme)
        assert not plain.logs_read_checksums
        assert checksummed.logs_read_checksums
        assert checksummed.name == "cw_read_logging"

    def test_hardware(self):
        assert isinstance(make_scheme("hardware"), HardwareProtectionScheme)

    def test_deferred(self):
        assert isinstance(make_scheme("deferred"), DeferredMaintenanceScheme)


class TestCapabilityMetadata:
    """The Direct/Indirect columns of Table 2."""

    def test_table2_capability_matrix(self):
        expectations = {
            "baseline": ("none", "none"),
            "data_cw": ("detect", "none"),
            "precheck": ("detect", "prevent"),
            "read_logging": ("detect", "detect+correct"),
            "hardware": ("prevent", "unneeded"),
        }
        for name, (direct, indirect) in expectations.items():
            scheme = make_scheme(name)
            assert scheme.direct_protection == direct, name
            assert scheme.indirect_protection == indirect, name


class TestSpaceOverhead:
    def test_overhead_tracks_region_size(self):
        assert make_scheme("precheck", region_size=64).space_overhead == 4 / 64
        assert make_scheme("precheck", region_size=512).space_overhead == 4 / 512
        assert make_scheme("baseline").space_overhead == 0.0

    def test_paper_64_byte_overhead_is_about_6_percent(self):
        assert make_scheme("precheck", region_size=64).space_overhead == pytest.approx(
            0.0625
        )


@pytest.mark.parametrize(
    "scheme,params",
    [
        ("data_cw", {}),
        ("precheck", {"region_size": 64}),
        ("precheck", {"region_size": 512}),
        ("read_logging", {}),
        ("cw_read_logging", {}),
        ("deferred", {}),
    ],
)
class TestMaintenanceConsistency:
    """Under every codeword scheme, prescribed activity keeps audits clean."""

    def test_workload_then_clean_audit(self, db_factory, scheme, params):
        db = db_factory(scheme=scheme, **params)
        table = db.table("acct")
        slots = insert_accounts(db, 20)
        txn = db.begin()
        for i in range(10):
            table.update(txn, slots[i], {"balance": i * 11})
        table.delete(txn, slots[19])
        db.commit(txn)
        txn = db.begin()
        db.abort(txn)
        assert db.audit().clean

    def test_txn_abort_keeps_codewords_consistent(self, db_factory, scheme, params):
        db = db_factory(scheme=scheme, **params)
        table = db.table("acct")
        slots = insert_accounts(db, 5)
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 999})
        table.insert(txn, {"id": 100, "balance": 1})
        table.delete(txn, slots[1])
        db.abort(txn)
        assert db.audit().clean

    def test_wild_write_detected_by_audit(self, db_factory, scheme, params):
        db = db_factory(scheme=scheme, **params)
        insert_accounts(db, 5)
        db.memory.poke(db.table("acct").record_address(2), b"\xde\xad")
        report = db.audit()
        assert not report.clean
        assert len(report.corrupt_regions) == 1
