"""Prior-state recovery, and its contrast with the delete-transaction model."""

import pytest

from repro import Database, FaultInjector
from repro.errors import RecoveryError
from repro.recovery.prior_state import recover_prior_state

from tests.conftest import insert_accounts


def corrupted_run(db_factory, scheme="cw_read_logging"):
    """Checkpoint, clean txn, wild write, carrier txn, clean txn, audit."""
    db = db_factory(scheme=scheme)
    slots = insert_accounts(db, 10)
    db.checkpoint()
    table = db.table("acct")
    txn = db.begin()
    table.update(txn, slots[0], {"balance": 111})
    db.commit(txn)
    pre_corruption_txn = txn.txn_id
    FaultInjector(db, seed=1).wild_write(table.record_address(slots[1]) + 8, 8)
    txn = db.begin()
    value = table.read(txn, slots[1])["balance"]
    table.update(txn, slots[2], {"balance": value})
    db.commit(txn)
    carrier_txn = txn.txn_id
    txn = db.begin()
    table.update(txn, slots[3], {"balance": 333})
    db.commit(txn)
    clean_txn = txn.txn_id
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)
    return db, slots, pre_corruption_txn, carrier_txn, clean_txn


class TestPriorStateRecovery:
    def test_everything_after_cutoff_lost(self, db_factory):
        db, slots, pre, carrier, clean = corrupted_run(db_factory)
        db2, report = recover_prior_state(db.config)
        # The cutoff is the last clean audit, taken at the checkpoint --
        # BEFORE the pre-corruption transaction, which is therefore lost
        # too: the whole point of the paper's finer-grained model.
        assert pre in report.lost_set
        assert carrier in report.lost_set
        assert clean in report.lost_set
        txn = db2.begin()
        table = db2.table("acct")
        for i in range(4):
            assert table.read(txn, slots[i])["balance"] == 100
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()

    def test_prior_state_loses_superset_of_delete_transaction(self, db_factory):
        """The quantitative contrast of Section 4.1."""
        db, _slots, pre, carrier, clean = corrupted_run(db_factory)
        _db_d, delete_report = Database.recover(db.config)
        _db_d.close()

        db2, _, pre2, carrier2, clean2 = corrupted_run(db_factory)
        _db_p, prior_report = recover_prior_state(db2.config)
        _db_p.close()

        # Same scenario: delete-transaction deletes only the carrier;
        # prior-state loses all three.
        assert delete_report.deleted_set == {carrier}
        assert prior_report.lost_set >= {pre2, carrier2, clean2}
        assert len(prior_report.lost_set) > len(delete_report.deleted_set)

    def test_recovered_database_usable(self, db_factory):
        db, slots, *_ = corrupted_run(db_factory)
        db2, _report = recover_prior_state(db.config)
        txn = db2.begin()
        db2.table("acct").update(txn, slots[0], {"balance": 5})
        db2.commit(txn)
        db2.checkpoint()
        db2.close()

    def test_requires_corruption_note(self, db_factory):
        db = db_factory()
        insert_accounts(db, 2)
        db.crash()
        with pytest.raises(RecoveryError):
            recover_prior_state(db.config)

    def test_open_transaction_at_checkpoint_rolled_back(self, db_factory):
        db = db_factory(scheme="data_cw")
        slots = insert_accounts(db, 5)
        txn_open = db.begin()
        db.table("acct").update(txn_open, slots[4], {"balance": 444})
        db.checkpoint()  # open txn's undo goes into the checkpoint ATT
        FaultInjector(db, seed=2).wild_write(
            db.table("acct").record_address(slots[1]) + 8, 8
        )
        report = db.audit()
        db.crash_with_corruption(report)
        db2, _report = recover_prior_state(db.config)
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[4])["balance"] == 100
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()
