"""Archive replay vs logged compensations: the non-idempotent cases.

When corruption recovery rolls back a deleted transaction's committed
operations, the compensations run as *logged* recovery transactions.  An
archive replay therefore sees both the original operations and their
compensations in the log, plus the frozen undo logs it reconstructs
itself.  Three mechanisms keep that single-compensation-exactly-once:

* recovery transactions are flagged in their TxnBegin records and are
  never recruited during a replay;
* passing an AmendRecord clears the frozen undo logs of corrupt
  transactions (their compensations are already on the log);
* recovery-time logical undo is lenient (idempotent) for the residual
  crash-during-recovery window.

These tests use INSERT compensation (a delete), which is not idempotent
-- the case that would fail without the mechanisms above.
"""

import pytest

from repro import Database, FaultInjector
from repro.recovery.archive import create_archive, recover_from_archive

from tests.conftest import insert_accounts


def insert_carrier_episode(db_factory, scheme="cw_read_logging"):
    """Archive; carrier txn INSERTS then reads corrupt data; recover."""
    db = db_factory(scheme=scheme)
    slots = insert_accounts(db, 8)
    info = create_archive(db, db.path("arch"))
    table = db.table("acct")
    FaultInjector(db, seed=5).wild_write(table.record_address(slots[1]) + 8, 8)
    # The carrier commits an INSERT before reading corrupt data, so the
    # insert is applied and must later be compensated by a delete.
    txn = db.begin()
    new_slot = table.insert(txn, {"id": 500, "balance": 5})
    bogus = table.read(txn, slots[1])["balance"]
    table.update(txn, slots[2], {"balance": bogus})
    db.commit(txn)
    carrier = txn.txn_id
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)
    db2, recovery = Database.recover(db.config)
    assert carrier in recovery.deleted_set
    txn = db2.begin()
    assert db2.table("acct").lookup(txn, 500) is None  # insert compensated
    db2.commit(txn)
    return db2, info, slots, carrier, new_slot


class TestInsertCompensationThroughArchive:
    def test_replay_compensates_exactly_once(self, db_factory):
        db2, info, slots, carrier, new_slot = insert_carrier_episode(db_factory)
        # Post-recovery work that reuses the freed slot raises the stakes:
        # a double-delete during replay would destroy it.
        txn = db2.begin()
        reused = db2.table("acct").insert(txn, {"id": 600, "balance": 6})
        db2.commit(txn)
        assert reused == new_slot
        db2.crash()
        db3, replay = recover_from_archive(db2.config, info.path)
        assert carrier in replay.deleted_set
        txn = db3.begin()
        table = db3.table("acct")
        assert table.lookup(txn, 500) is None
        assert table.lookup(txn, 600) == new_slot  # survived the replay
        assert table.read(txn, slots[2])["balance"] == 100
        db3.commit(txn)
        assert db3.audit().clean
        db3.close()

    def test_recovery_transactions_not_recruited_in_replay(self, db_factory):
        db2, info, _slots, carrier, _new_slot = insert_carrier_episode(db_factory)
        db2.crash()
        _db3, replay = recover_from_archive(db2.config, info.path)
        # Only the carrier is deleted; no recovery transaction appears.
        assert replay.deleted_set == {carrier}
        _db3.close()

    def test_crash_during_recovery_with_insert_compensation(self, db_factory):
        """The residual window: recovery compensates (logged), crashes
        before its amend record + final checkpoint.  The second recovery
        re-freezes the carrier's undo log AND replays the logged
        compensation -- lenient undo keeps that from double-deleting."""
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 8)
        db.checkpoint()
        table = db.table("acct")
        FaultInjector(db, seed=5).wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        table.insert(txn, {"id": 500, "balance": 5})
        table.read(txn, slots[1])
        db.commit(txn)
        carrier = txn.txn_id
        report = db.audit()
        db.crash_with_corruption(report)

        from repro.recovery.restart import RestartRecovery, load_corruption_note

        shell = Database(db.config)
        shell._load_catalog()
        shell._build_layout()
        shell._open_log_and_manager()
        recovery = RestartRecovery(shell, load_corruption_note(shell))
        recovery._finish = lambda: (_ for _ in ()).throw(
            RuntimeError("simulated crash after undo, before amend")
        )
        with pytest.raises(RuntimeError):
            recovery.run()
        shell.system_log.flush()  # the compensation txns were flushed at commit
        shell.system_log.crash()

        db2, report2 = Database.recover(db.config)
        assert carrier in report2.deleted_set
        txn = db2.begin()
        assert db2.table("acct").lookup(txn, 500) is None
        db2.commit(txn)
        assert db2.audit().clean
        db2.close()
