"""Batched update windows: identity against the scalar window path.

The tentpole claim of the batched write path is that it is a pure
wall-clock optimisation: ``begin_updates`` (one multi-region window) and
``DBConfig(update_batch=N)`` (implicit coalescing of consecutive
``update()`` calls) must leave memory bytes, codewords, log contents and
every meter count exactly where N scalar windows would have left them.
``Meter.charge`` is linear and XOR folding is associative, so the bulk
charges and the one vectorized delta-fold cannot move any Table 2 number
-- these tests make that claim load-bearing.

Documented divergences (asserted as such, not papered over):

* aborting an *open* coalescing window rolls back without ever folding
  the pending deltas, so the abort path charges less than scalar
  fold+unfold would -- the bytes and codewords still come back identical;
* a coalescing window that revisits an address logs one redo record per
  visit whose images chain sequentially; the *final* replayed bytes are
  identical to the scalar path's.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, DBConfig, Field, FieldType, Schema
from repro.core.regions import CodewordTable
from repro.errors import TransactionError
from repro.mem.memory import MemoryImage
from repro.wal.records import LogicalUndo, UpdateRecord

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)


def _make_db(dirname: str, **config_kwargs) -> Database:
    config = DBConfig(
        dir=dirname,
        scheme=config_kwargs.pop("scheme", "data_cw"),
        scheme_params=config_kwargs.pop("scheme_params", {"region_size": 64}),
        **config_kwargs,
    )
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    txn = db.begin()
    table = db.table("acct")
    for i in range(32):
        table.insert(txn, {"id": i, "balance": 1000 + i, "name": f"a{i}"})
    db.commit(txn)
    return db


def _record_addr(db: Database, slot: int) -> int:
    return db.table("acct").record_address(slot)


def _run_updates(db: Database, updates, batched_api: bool) -> None:
    """Apply (slot, value) updates inside one operation per chunk.

    ``batched_api=False``: one scalar begin/write/end window per update.
    ``batched_api=True``: one ``begin_updates`` window per chunk of
    disjoint slots, then per-range writes, then one ``end_update``.
    """
    mgr = db.manager
    txn = db.begin()
    mgr.begin_operation(txn, "acct:bench")
    if batched_api:
        # Dedup slots (explicit windows need disjoint ranges) keeping the
        # *last* value per slot -- byte-identical to replaying in order.
        final = {}
        for slot, value in updates:
            final[slot] = value
        regions = [(_record_addr(db, slot) + 8, 8) for slot in final]
        mgr.begin_updates(txn, regions)
        for (slot, value), (address, length) in zip(final.items(), regions):
            mgr.write(txn, address, value.to_bytes(8, "little"))
        mgr.end_update(txn)
    else:
        for slot, value in updates:
            address = _record_addr(db, slot) + 8
            mgr.begin_update(txn, address, 8)
            mgr.write(txn, address, value.to_bytes(8, "little"))
            mgr.end_update(txn)
    mgr.commit_operation(txn, LogicalUndo("noop"))
    db.commit(txn)


def _state(db: Database) -> tuple:
    codewords = db.scheme.codeword_table._codewords.copy()
    return (
        db.memory.snapshot_segments(),
        codewords.tolist(),
        dict(db.meter.counts),
        db.meter.clock.now_ns,
    )


# --------------------------------------------------------------------------
# Kernel-level fold identity: apply_update_batch vs per-item apply_update
# --------------------------------------------------------------------------


@st.composite
def _batch_items(draw):
    """(region_size, image_size, [(address, old, new)]) with ragged,
    unaligned, region-straddling updates."""
    region_size = draw(st.sampled_from([8, 16, 64, 256]))
    image_size = draw(st.sampled_from([512, 2048]))
    count = draw(st.integers(min_value=1, max_value=12))
    items = []
    for _ in range(count):
        length = draw(st.integers(min_value=1, max_value=96))
        address = draw(st.integers(min_value=0, max_value=image_size - length))
        old = draw(st.binary(min_size=length, max_size=length))
        new = draw(st.binary(min_size=length, max_size=length))
        items.append((address, old, new))
    return region_size, image_size, items


class TestKernelFoldIdentity:
    @given(_batch_items())
    @settings(max_examples=120, deadline=None)
    def test_batch_fold_bit_identical_to_scalar(self, case):
        region_size, image_size, items = case
        memory = MemoryImage(page_size=256)
        memory.add_segment("seg", image_size)
        scalar = CodewordTable(memory, region_size)
        batch = CodewordTable(memory, region_size)
        seed = np.arange(scalar.region_count, dtype=np.uint32) * 0x9E3779B9
        scalar._codewords = seed.copy()
        batch._codewords = seed.copy()

        scalar_words = sum(scalar.apply_update(a, o, n) for a, o, n in items)
        batch_words = batch.apply_update_batch(items)

        assert batch_words == scalar_words
        assert np.array_equal(scalar._codewords, batch._codewords)

    def test_both_threshold_paths_agree(self):
        """Force the scalar fallback and the reduceat path explicitly."""
        memory = MemoryImage(page_size=256)
        memory.add_segment("seg", 4096)
        small = [(3, b"ab", b"cd")]  # < _BATCH_NUMPY_THRESHOLD packed bytes
        big = [(i * 64 + 1, bytes(range(40)), bytes(range(40, 80))) for i in range(20)]
        for items in (small, big):
            scalar = CodewordTable(memory, 64)
            batch = CodewordTable(memory, 64)
            words = sum(scalar.apply_update(a, o, n) for a, o, n in items)
            assert batch.apply_update_batch(items) == words
            assert np.array_equal(scalar._codewords, batch._codewords)


# --------------------------------------------------------------------------
# Full-path identity: scalar windows vs begin_updates vs update_batch
# --------------------------------------------------------------------------


@st.composite
def _workloads(draw):
    count = draw(st.integers(min_value=1, max_value=14))
    updates = [
        (
            draw(st.integers(min_value=0, max_value=31)),
            draw(st.integers(min_value=0, max_value=2**62)),
        )
        for _ in range(count)
    ]
    batch = draw(st.sampled_from([2, 3, 8]))
    return updates, batch


class TestFullPathIdentity:
    @given(_workloads())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_coalescing_is_meter_and_byte_identical(self, case):
        """DBConfig(update_batch=N) vs scalar: same bytes, same meter."""
        updates, batch = case
        base = tempfile.mkdtemp(prefix="batchwin-")
        try:
            scalar_db = _make_db(f"{base}/scalar")
            batched_db = _make_db(f"{base}/batched", update_batch=batch)
            txn_updates = [(slot, value) for slot, value in updates]
            for db in (scalar_db, batched_db):
                # table-level update goes through manager.update per field;
                # run at the manager level so coalescing actually engages.
                mgr = db.manager
                txn = db.begin()
                mgr.begin_operation(txn, "acct:mix")
                for slot, value in txn_updates:
                    mgr.update(
                        txn,
                        _record_addr(db, slot) + 8,
                        value.to_bytes(8, "little"),
                    )
                mgr.commit_operation(txn, LogicalUndo("noop"))
                db.commit(txn)
            s_mem, s_cw, s_counts, s_ns = _state(scalar_db)
            b_mem, b_cw, b_counts, b_ns = _state(batched_db)
            assert b_mem == s_mem
            assert b_cw == s_cw
            assert b_counts == s_counts
            assert b_ns == s_ns
            assert scalar_db.audit().clean and batched_db.audit().clean
            scalar_db.close()
            batched_db.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)

    @given(_workloads())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_begin_updates_is_meter_and_byte_identical(self, case):
        """Explicit begin_updates vs N scalar windows over disjoint slots."""
        updates, _batch = case
        # Disjoint ranges: keep the last value per slot (same final bytes).
        final = {}
        for slot, value in updates:
            final[slot] = value
        deduped = list(final.items())
        base = tempfile.mkdtemp(prefix="batchwin-")
        try:
            scalar_db = _make_db(f"{base}/scalar")
            batched_db = _make_db(f"{base}/batched")
            _run_updates(scalar_db, deduped, batched_api=False)
            _run_updates(batched_db, deduped, batched_api=True)
            s_mem, s_cw, s_counts, s_ns = _state(scalar_db)
            b_mem, b_cw, b_counts, b_ns = _state(batched_db)
            assert b_mem == s_mem
            assert b_cw == s_cw
            assert b_counts == s_counts
            assert b_ns == s_ns
            scalar_db.close()
            batched_db.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)


# --------------------------------------------------------------------------
# Window semantics
# --------------------------------------------------------------------------


class TestBatchWindowSemantics:
    def setup_method(self):
        self.base = tempfile.mkdtemp(prefix="batchsem-")

    def teardown_method(self):
        shutil.rmtree(self.base, ignore_errors=True)

    def _db(self, **kwargs) -> Database:
        self._count = getattr(self, "_count", 0) + 1
        return _make_db(f"{self.base}/db{self._count}", **kwargs)

    def test_begin_updates_multi_region_window(self):
        db = self._db()
        mgr = db.manager
        a0, a1 = _record_addr(db, 0) + 8, _record_addr(db, 5) + 8
        txn = db.begin()
        mgr.begin_operation(txn, "op")
        mgr.begin_updates(txn, [(a0, 8), (a1, 8)])
        mgr.write(txn, a0, (111).to_bytes(8, "little"))
        mgr.write(txn, a1, (222).to_bytes(8, "little"))
        mgr.end_update(txn)
        mgr.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
        assert int.from_bytes(db.memory.read(a0, 8), "little") == 111
        assert int.from_bytes(db.memory.read(a1, 8), "little") == 222
        assert db.audit().clean
        db.close()

    def test_write_outside_batch_window_rejected(self):
        db = self._db()
        mgr = db.manager
        a0 = _record_addr(db, 0) + 8
        stray = _record_addr(db, 20) + 8
        txn = db.begin()
        mgr.begin_operation(txn, "op")
        mgr.begin_updates(txn, [(a0, 8)])
        with pytest.raises(TransactionError, match="outside the"):
            mgr.write(txn, stray, b"\x00" * 8)
        mgr.end_update(txn)
        mgr.commit_operation(txn, LogicalUndo("noop"))
        db.abort(txn)
        db.close()

    def test_overlapping_explicit_ranges_rejected(self):
        db = self._db()
        mgr = db.manager
        a0 = _record_addr(db, 0)
        txn = db.begin()
        mgr.begin_operation(txn, "op")
        with pytest.raises(TransactionError, match="disjoint"):
            mgr.begin_updates(txn, [(a0, 16), (a0 + 8, 16)])
        with pytest.raises(TransactionError, match="at least one region"):
            mgr.begin_updates(txn, [])
        db.abort(txn)
        db.close()

    def test_second_window_while_open_rejected(self):
        db = self._db()
        mgr = db.manager
        a0 = _record_addr(db, 0) + 8
        txn = db.begin()
        mgr.begin_operation(txn, "op")
        mgr.begin_updates(txn, [(a0, 8)])
        with pytest.raises(TransactionError, match="already has an open"):
            mgr.begin_updates(txn, [(a0, 8)])
        mgr.end_update(txn)
        mgr.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
        db.close()

    def test_abort_mid_window_restores_bytes_and_codewords(self):
        db = self._db(update_batch=4)
        mgr = db.manager
        addresses = [_record_addr(db, s) + 8 for s in (1, 2, 3)]
        before = db.memory.snapshot_segments()
        txn = db.begin()
        mgr.begin_operation(txn, "op")
        for i, address in enumerate(addresses):
            mgr.update(txn, address, (7000 + i).to_bytes(8, "little"))
        # The window is still open (3 < update_batch): abort rolls back.
        assert txn.pending_update is not None and txn.pending_update.coalescing
        db.abort(txn)
        assert db.memory.snapshot_segments() == before
        assert db.audit().clean
        db.close()

    def test_coalescing_flush_triggers(self):
        db = self._db(update_batch=4)
        mgr = db.manager
        a = [_record_addr(db, s) + 8 for s in range(8)]
        value = (42).to_bytes(8, "little")

        txn = db.begin()
        mgr.begin_operation(txn, "op")
        mgr.update(txn, a[0], value)
        assert txn.pending_update is not None  # window open, coalescing
        mgr.read(txn, a[1], 8)  # a read flushes the window first
        assert txn.pending_update is None

        mgr.update(txn, a[1], value)
        mgr.begin_update(txn, a[2], 8)  # explicit window open flushes too
        mgr.write(txn, a[2], value)
        mgr.end_update(txn)

        mgr.update(txn, a[3], value)
        mgr.commit_operation(txn, LogicalUndo("noop"))  # op commit flushes
        assert txn.pending_update is None

        mgr.begin_operation(txn, "op2")
        for i in range(4, 8):
            mgr.update(txn, a[i], value)
            if i < 7:
                assert txn.pending_update is not None
        # 4 coalesced ranges == update_batch: the window closed itself.
        assert txn.pending_update is None
        mgr.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
        for address in a:
            assert db.memory.read(address, 8) == value
        assert db.audit().clean
        db.close()

    def test_repeated_address_in_coalescing_window(self):
        """Sequential delta chain: same slot updated twice in one batch."""
        db = self._db(update_batch=4)
        mgr = db.manager
        address = _record_addr(db, 9) + 8
        txn = db.begin()
        mgr.begin_operation(txn, "op")
        mgr.update(txn, address, (1).to_bytes(8, "little"))
        mgr.update(txn, address, (2).to_bytes(8, "little"))
        mgr.update(txn, _record_addr(db, 10) + 8, (3).to_bytes(8, "little"))
        mgr.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
        assert int.from_bytes(db.memory.read(address, 8), "little") == 2
        assert db.audit().clean  # the delta chain folded sequentially
        db.close()


# --------------------------------------------------------------------------
# Satellite: end_update logs tracked bytes, not a re-read of the window
# --------------------------------------------------------------------------


class TestRedoImageIdentity:
    def test_partial_write_redo_image_matches_memory(self):
        """A window wider than its writes logs undo-seeded redo bytes --
        byte-identical to re-reading the window from memory."""
        base = tempfile.mkdtemp(prefix="redoimg-")
        try:
            db = _make_db(f"{base}/db")
            mgr = db.manager
            address = _record_addr(db, 4)  # whole 32-byte record window
            txn = db.begin()
            mgr.begin_operation(txn, "op")
            mgr.begin_update(txn, address, 32)
            mgr.write(txn, address + 8, (555).to_bytes(8, "little"))
            mgr.end_update(txn)
            records = [
                r for r in txn.redo_log.records if isinstance(r, UpdateRecord)
            ]
            assert len(records) == 1
            assert records[0].image == db.memory.read(address, 32)
            mgr.commit_operation(txn, LogicalUndo("noop"))
            db.commit(txn)
            db.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_batch_window_redo_images_match_memory(self):
        base = tempfile.mkdtemp(prefix="redoimg-")
        try:
            db = _make_db(f"{base}/db")
            mgr = db.manager
            regions = [(_record_addr(db, s), 32) for s in (2, 11, 17)]
            txn = db.begin()
            mgr.begin_operation(txn, "op")
            mgr.begin_updates(txn, regions)
            for address, _length in regions:
                mgr.write(txn, address + 8, (999).to_bytes(8, "little"))
            mgr.end_update(txn)
            records = [
                r for r in txn.redo_log.records if isinstance(r, UpdateRecord)
            ]
            assert [(r.address, r.image) for r in records] == [
                (address, db.memory.read(address, length))
                for address, length in regions
            ]
            mgr.commit_operation(txn, LogicalUndo("noop"))
            db.commit(txn)
            assert db.audit().clean
            db.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)
