"""Recovery idempotence: crash recovery anywhere, re-run, same answer.

Restart recovery must be a pure function of its stable inputs (anchor,
checkpoint image, stable log, corruption note).  A crash at *any* of its
crash points leaves those inputs semantically unchanged, so re-running
recovery must converge to the byte-identical memory image and an
equivalent :class:`RecoveryReport`.
"""

from __future__ import annotations

import dataclasses
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, CrashPointRegistry, DBConfig, FaultInjector
from repro.errors import SimulatedCrash
from repro.faults.crashpoints import RECOVERY_CRASH_POINTS

from tests.conftest import ACCT_SCHEMA, insert_accounts


def _build_corrupted_template(template_dir: str) -> DBConfig:
    """A crashed database dir whose recovery has real work at every phase:
    redo from the log, corrupt-read conviction, undo of spread txns."""
    config = DBConfig(
        dir=template_dir,
        scheme="cw_read_logging",
        scheme_params={"region_size": 256},
        record_history=True,
    )
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    slots = insert_accounts(db, 6)
    db.checkpoint()
    table = db.table("acct")
    FaultInjector(db, seed=11).wild_write(table.record_address(slots[1]) + 8, 8)
    # Propagate the corrupt value through a read: recovery must convict
    # and delete this committed transaction, not just roll back.
    txn = db.begin()
    value = table.read(txn, slots[1])["balance"]
    table.update(txn, slots[2], {"balance": value})
    db.commit(txn)
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)
    return config


@pytest.fixture(scope="module")
def template(tmp_path_factory):
    template_dir = str(tmp_path_factory.mktemp("idem") / "template")
    config = _build_corrupted_template(template_dir)
    return template_dir, config


def _fresh_copy(template, tmp_path_factory) -> DBConfig:
    """Config pointing at a pristine copy of the crashed template dir."""
    template_dir, config = template
    workdir = str(tmp_path_factory.mktemp("idem-run") / "db")
    shutil.copytree(template_dir, workdir)
    return dataclasses.replace(config, dir=workdir)


def _report_key(report):
    """Report fields that must be invariant across recovery re-runs.

    ``redo_applied`` legitimately differs: the interrupted first attempt
    may have advanced stable state (truncated tail, flushed amendments),
    shrinking the second run's redo span.
    """
    return (
        report.mode,
        report.audit_sn,
        report.writes_suppressed,
        report.deleted_committed,
        report.rolled_back,
        report.recruited,
        report.corrupt_range_count,
    )


class TestRecoveryIdempotence:
    @given(point=st.sampled_from(RECOVERY_CRASH_POINTS))
    @settings(max_examples=2 * len(RECOVERY_CRASH_POINTS), deadline=None)
    def test_crash_at_any_point_then_rerun_converges(
        self, point, template, tmp_path_factory
    ):
        # Reference run: uninterrupted recovery of a pristine copy.
        ref_db, ref_report = Database.recover(_fresh_copy(template, tmp_path_factory))
        assert ref_report.mode == "delete-transaction-view"
        ref_image = ref_db.memory.snapshot_segments()
        ref_db.close()

        # Crash the first recovery attempt at ``point``, then re-run
        # against the same (now once-interrupted) directory.  The armed
        # point is one-shot, so reusing the registry cannot re-fire.
        config = _fresh_copy(template, tmp_path_factory)
        registry = CrashPointRegistry().arm(point)
        with pytest.raises(SimulatedCrash) as exc:
            Database.recover(config, crashpoints=registry)
        assert exc.value.point == point
        db, report = Database.recover(config, crashpoints=registry)

        assert _report_key(report) == _report_key(ref_report)
        assert db.memory.snapshot_segments() == ref_image
        assert db.audit().clean
        db.close()

    def test_double_crash_still_converges(self, template, tmp_path_factory):
        """Two interrupted attempts in a row (different points) do not
        compound: the third run still reaches the reference state."""
        ref_db, ref_report = Database.recover(_fresh_copy(template, tmp_path_factory))
        ref_image = ref_db.memory.snapshot_segments()
        ref_db.close()

        config = _fresh_copy(template, tmp_path_factory)
        for point in ("recovery.after_redo", "recovery.pre_complete"):
            registry = CrashPointRegistry().arm(point)
            with pytest.raises(SimulatedCrash):
                Database.recover(config, crashpoints=registry)
        db, report = Database.recover(config)
        assert _report_key(report) == _report_key(ref_report)
        assert db.memory.snapshot_segments() == ref_image
        db.close()
