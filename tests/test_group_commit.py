"""Group commit (``DBConfig(group_commit_size=N)``).

Default config must stay flush-per-commit and meter-identical to the
pre-batching behaviour; N > 1 amortizes flushes across commits at the
documented durability cost (a crash can lose up to N-1 reported commits,
which restart recovery rolls back like any uncommitted work).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DBConfig
from repro.errors import ConfigError

from tests.conftest import ACCT_SCHEMA, insert_accounts


def make_db(tmp_path, name, **config_kwargs) -> Database:
    config = DBConfig(dir=str(tmp_path / name), scheme="baseline", **config_kwargs)
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    return db


def read_balances(db: Database, slots: list[int]) -> list[int]:
    table = db.table("acct")
    txn = db.begin()
    balances = [table.read(txn, slot)["balance"] for slot in slots]
    db.commit(txn)
    return balances


def run_workload(db: Database, deposits: list[int]) -> None:
    table = db.table("acct")
    for i, amount in enumerate(deposits):
        txn = db.begin()
        table.update(txn, i % 3, {"balance": 100 + amount})
        db.commit(txn)


class TestDefaultConfig:
    def test_default_is_flush_per_commit(self, tmp_path):
        db = make_db(tmp_path, "d1")
        insert_accounts(db, 3)
        before = db.meter.counts["flush_fixed"]
        run_workload(db, [1, 2, 3, 4])
        assert db.system_log.tail == []  # every commit flushed
        assert db.meter.counts["flush_fixed"] == before + 4
        db.close()

    @given(deposits=st.lists(st.integers(0, 1000), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_default_meter_identical_to_flushed_group_commit(
        self, deposits, tmp_path_factory
    ):
        """Group commit with an immediate ``flush_commits`` after every
        commit is meter-identical to the default path over the workload:
        the machinery adds zero events, only flush *timing* changes.
        (Bootstrap flush timing differs before the window is drained, so
        the comparison is over meter deltas, not absolute totals.)"""
        base = tmp_path_factory.mktemp("gc")
        default = make_db(base, "default")
        grouped = make_db(base, "grouped", group_commit_size=4)
        insert_accounts(default, 3)
        insert_accounts(grouped, 3)
        grouped.manager.flush_commits()  # drain setup commits from the window
        marks = {id(default): default.meter.snapshot(), id(grouped): grouped.meter.snapshot()}

        def delta(db):
            mark = marks[id(db)]
            return {
                event: (count - mark.get(event, (0, 0))[0], ns - mark.get(event, (0, 0))[1])
                for event, (count, ns) in db.meter.snapshot().items()
                if (count, ns) != mark.get(event, (0, 0))
            }

        run_workload(default, deposits)
        table = grouped.table("acct")
        for i, amount in enumerate(deposits):
            txn = grouped.begin()
            table.update(txn, i % 3, {"balance": 100 + amount})
            grouped.commit(txn)
            grouped.manager.flush_commits()
        assert delta(default) == delta(grouped)
        default.close()
        grouped.close()


class TestGroupedCommits:
    def test_window_defers_flush_until_full(self, tmp_path):
        db = make_db(tmp_path, "g1", group_commit_size=3)
        insert_accounts(db, 3)
        db.manager.flush_commits()  # setup commits count toward the window
        before = db.meter.counts["flush_fixed"]
        run_workload(db, [1, 2])
        assert len(db.system_log.tail) > 0  # two commits still buffered
        assert db.meter.counts["flush_fixed"] == before
        run_workload(db, [3])  # third commit fills the window
        assert db.system_log.tail == []
        assert db.meter.counts["flush_fixed"] == before + 1
        db.close()

    def test_fewer_flushes_than_default(self, tmp_path):
        grouped = make_db(tmp_path, "g2", group_commit_size=8)
        default = make_db(tmp_path, "d2")
        for db in (grouped, default):
            insert_accounts(db, 3)
            db.manager.flush_commits()
            start = db.meter.counts["flush_fixed"]
            run_workload(db, list(range(16)))
            db.flushes_used = db.meter.counts["flush_fixed"] - start
        assert grouped.flushes_used == 2  # 16 commits / window of 8
        assert default.flushes_used == 16
        grouped.close()
        default.close()

    def test_abort_flushes_and_resets_window(self, tmp_path):
        db = make_db(tmp_path, "g3", group_commit_size=4)
        insert_accounts(db, 3)
        db.manager.flush_commits()
        run_workload(db, [1])  # one buffered commit
        assert len(db.system_log.tail) > 0
        txn = db.begin()
        db.table("acct").update(txn, 0, {"balance": 999})
        db.abort(txn)
        assert db.system_log.tail == []  # abort drains the window
        run_workload(db, [2, 3, 4])  # window restarts from zero
        assert len(db.system_log.tail) > 0
        db.close()

    def test_clean_close_makes_buffered_commits_durable(self, tmp_path):
        config = DBConfig(
            dir=str(tmp_path / "g4"), scheme="baseline", group_commit_size=8
        )
        db = Database(config)
        db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        db.start()
        slots = insert_accounts(db, 3)
        db.checkpoint()
        db.manager.flush_commits()  # reset the window the setup commits used
        run_workload(db, [7, 8])  # buffered, window not full
        assert len(db.system_log.tail) > 0
        db.close()  # flush_commits() inside close drains the window
        recovered, _report = Database.recover(config)
        assert read_balances(recovered, [slots[0], slots[1]]) == [107, 108]
        recovered.close()

    def test_crash_loses_at_most_window_minus_one_commits(self, tmp_path):
        config = DBConfig(
            dir=str(tmp_path / "g5"), scheme="baseline", group_commit_size=4
        )
        db = Database(config)
        db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        db.start()
        slots = insert_accounts(db, 3)
        db.checkpoint()
        db.manager.flush_commits()  # reset the window the setup commits used
        run_workload(db, [11, 12, 13])  # 3 buffered commits (< window of 4)
        db.crash()
        recovered, _report = Database.recover(config)
        # The buffered commits never reached the stable log: they are
        # gone, and the pre-crash state is intact -- the documented
        # <= N-1 durability trade of group commit.
        assert read_balances(recovered, [slots[i] for i in range(3)]) == [100] * 3
        recovered.close()

    def test_full_windows_survive_crash(self, tmp_path):
        config = DBConfig(
            dir=str(tmp_path / "g6"), scheme="baseline", group_commit_size=2
        )
        db = Database(config)
        db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        db.start()
        slots = insert_accounts(db, 3)
        db.checkpoint()
        db.manager.flush_commits()  # reset the window the setup commits used
        run_workload(db, [21, 22, 23])  # first two flushed, third buffered
        db.crash()
        recovered, _report = Database.recover(config)
        # First window flushed, third commit lost with the tail.
        assert read_balances(recovered, [slots[i] for i in range(3)]) == [121, 122, 100]
        recovered.close()


class TestConfigValidation:
    def test_group_commit_size_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigError):
            Database(DBConfig(dir=str(tmp_path / "bad"), group_commit_size=0))
