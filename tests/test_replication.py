"""Replication: log shipping, divergence detection, certified failover.

API-level coverage of :mod:`repro.replication`; the end-to-end fault
matrix (crash scheduling, abrupt death, the single-node comparison arm)
lives in the campaign (:mod:`repro.replication.campaign`, exercised by
``tests/test_replication_campaign.py`` and the ``--replication`` bench).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Database, DBConfig, FaultInjector
from repro.errors import (
    ArchiveError,
    PromotionError,
    ReproError,
    ServeError,
)
from repro.recovery.archive import create_archive, read_archive_info
from repro.replication import (
    FAULT_KINDS,
    LogShipper,
    Replica,
    ShipBatch,
    ShipTransport,
)
from repro.serve import Request, Server

from tests.conftest import ACCT_SCHEMA, insert_accounts

ACCOUNTS = 8
#: Allocated-but-never-touched slot: its region is never dirty on either
#: node, so only digest epochs (or a full sweep) can see damage there.
COLD_SLOT = ACCOUNTS + 3


def _config(path) -> DBConfig:
    return DBConfig(
        dir=str(path),
        scheme="data_cw+cw_read_logging",
        scheme_params={"region_size": 256},
        quarantine=True,
        audit_mode="incremental",
        full_sweep_every=1000,
    )


def _build_pair(base, crashpoints=None, window=4, batch_records=8):
    """Primary with accounts + archived-and-bootstrapped hot standby."""
    primary = Database(_config(base / "primary"))
    primary.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    primary.start()
    slots = insert_accounts(primary, ACCOUNTS)
    create_archive(primary, str(base / "archive"))
    replica_config = _config(base / "replica")
    replica = Replica.bootstrap(
        replica_config, str(base / "archive"), crashpoints=crashpoints
    )
    transport = ShipTransport()
    shipper = LogShipper(
        primary, transport, replica, window=window, batch_records=batch_records
    )
    return primary, replica, shipper, transport, slots, replica_config


def _update(db, slots, acct: int, balance: int) -> None:
    table = db.table("acct")
    txn = db.begin()
    table.update(txn, slots[acct], {"balance": balance})
    db.commit(txn)


def _read_balance(db, slot: int) -> int:
    txn = db.begin()
    try:
        return db.table("acct").read(txn, slot)["balance"]
    finally:
        db.abort(txn)


class TestShipAndReplay:
    def test_replayed_image_matches_primary(self, tmp_path):
        primary, replica, shipper, _t, slots, _c = _build_pair(tmp_path)
        committed = {}
        for op in range(10):
            acct = op % ACCOUNTS
            _update(primary, slots, acct, 5000 + op)
            committed[acct] = 5000 + op
            shipper.pump()
            if op % 4 == 3:
                assert primary.checkpoint().certified
        assert shipper.drain()
        assert shipper.caught_up
        assert replica.next_lsn == primary.system_log.end_of_stable_lsn
        # Independent codeword tables over byte-equivalent images.
        assert np.array_equal(
            replica.db.pipeline.maintainer.region_digests(),
            primary.pipeline.maintainer.region_digests(),
        )
        assert replica.detections == []
        # Digest epochs rode along with the certified checkpoints and all
        # compared clean.
        assert replica.divergence.epochs_checked >= 2
        assert replica.divergence.diverged == []
        primary.close()
        replica.close()

    def test_promote_clean_standby(self, tmp_path):
        primary, replica, shipper, _t, slots, _c = _build_pair(tmp_path)
        _update(primary, slots, 0, 7777)
        assert shipper.drain()
        primary_end = primary.system_log.end_of_stable_lsn
        primary.crash()
        report = replica.promote(primary_end_lsn=primary_end)
        assert report.certified
        assert report.lost_commit_window == 0
        assert _read_balance(replica.db, slots[0]) == 7777
        # The promoted node admits writes again.
        _update(replica.db, slots, 1, 8888)
        assert _read_balance(replica.db, slots[1]) == 8888
        replica.close()


class TestDivergence:
    def test_primary_side_corruption_classified(self, tmp_path):
        primary, replica, shipper, _t, slots, _c = _build_pair(tmp_path)
        table = primary.table("acct")
        FaultInjector(primary, seed=7).wild_write(
            address=table.record_address(COLD_SLOT), length=16
        )
        _update(primary, slots, 0, 111)
        # The cold region is not in the dirty set, so the incremental
        # certifying audit stays blind and the corrupt fold is published.
        assert primary.checkpoint().certified
        assert shipper.drain()
        diverged = replica.divergence.diverged
        assert len(diverged) == 1
        assert diverged[0].classification == "primary"
        assert diverged[0].primary_side and not diverged[0].replica_side
        assert [d.channel for d in replica.detections] == ["digest"]
        # The replica's own image is fine: nothing quarantined.
        assert not replica.db.pipeline.maintainer.quarantined
        primary.close()
        replica.close()

    def test_replica_side_corruption_classified_and_fenced(self, tmp_path):
        primary, replica, shipper, _t, slots, _c = _build_pair(tmp_path)
        replica_table = replica.db.table("acct")
        FaultInjector(replica.db, seed=9).wild_write(
            address=replica_table.record_address(COLD_SLOT), length=16
        )
        _update(primary, slots, 0, 222)
        assert primary.checkpoint().certified
        assert shipper.drain()
        diverged = replica.divergence.diverged
        assert len(diverged) == 1
        assert diverged[0].classification == "replica"
        assert diverged[0].replica_side and not diverged[0].primary_side
        # The convicted regions are fenced like a failed local audit.
        assert replica.db.pipeline.maintainer.quarantined
        # Promotion refuses to certify over corrupt bytes...
        primary_end = primary.system_log.end_of_stable_lsn
        primary.crash()
        with pytest.raises(PromotionError):
            replica.promote(primary_end_lsn=primary_end)
        # ...until a repair from the replica's own checkpoint + log.
        assert replica.repair() > 0
        report = replica.promote(primary_end_lsn=primary_end)
        assert report.certified
        assert report.audit_report.clean
        replica.close()


class TestTransportFaults:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_tolerated_and_converges(self, tmp_path, kind):
        primary, replica, shipper, transport, slots, _c = _build_pair(tmp_path)
        transport.arm_fault(kind)
        for op in range(4):
            _update(primary, slots, op % ACCOUNTS, 3000 + op)
            shipper.pump()
        assert primary.checkpoint().certified
        assert shipper.drain(200)
        assert shipper.caught_up
        assert [k for k, _seq in transport.faults_applied] == [kind]
        # Convergence: byte-equivalent images, no corruption detections.
        assert np.array_equal(
            replica.db.pipeline.maintainer.region_digests(),
            primary.pipeline.maintainer.region_digests(),
        )
        assert replica.detections == []
        assert not replica.db.pipeline.maintainer.quarantined
        if kind in ("drop", "tear"):
            assert shipper.retransmits >= 1
        if kind == "tear":
            # The CRC classified the damage as transport corruption.
            assert replica.divergence.transport_errors
        if kind == "duplicate":
            assert replica.duplicate_batches >= 1
        primary.close()
        replica.close()

    def test_batch_codec_rejects_damage(self):
        batch = ShipBatch(3, 0, 100, 2, b"some frame bytes")
        raw = batch.encode()
        assert ShipBatch.decode(raw) == batch
        from repro.errors import ReplicationError

        with pytest.raises(ReplicationError):
            ShipBatch.decode(raw[: len(raw) // 2])
        flipped = bytearray(raw)
        flipped[len(raw) // 2] ^= 0x40
        with pytest.raises(ReplicationError):
            ShipBatch.decode(bytes(flipped))


class TestFailover:
    def test_lost_commit_window_surfaced(self, tmp_path):
        primary, replica, shipper, _t, slots, _c = _build_pair(tmp_path)
        # Commits the replica never sees: no pump before death.
        for op in range(5):
            _update(primary, slots, op % ACCOUNTS, 4000 + op)
        primary_end = primary.system_log.end_of_stable_lsn
        primary.crash()
        report = replica.promote(primary_end_lsn=primary_end)
        assert report.certified
        assert report.lost_commit_window == primary_end - report.promoted_lsn
        assert report.lost_commit_window > 0
        # The survivors are all committed values (the archived ones).
        for acct, slot in slots.items():
            assert _read_balance(replica.db, slot) == 100
        replica.close()


class TestArchiveErrors:
    def test_archive_error_is_typed(self):
        assert issubclass(ArchiveError, ReproError)

    def test_missing_manifest(self, tmp_path):
        empty = tmp_path / "not-an-archive"
        empty.mkdir()
        with pytest.raises(ArchiveError, match="manifest"):
            read_archive_info(str(empty))
        with pytest.raises(ArchiveError, match="manifest"):
            Replica.bootstrap(_config(tmp_path / "rep"), str(empty))

    def test_bootstrap_requires_catalog(self, tmp_path):
        from repro.storage.database import CATALOG_FILE

        primary = Database(_config(tmp_path / "primary"))
        primary.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        primary.start()
        insert_accounts(primary, 4)
        archive_dir = tmp_path / "archive"
        create_archive(primary, str(archive_dir))
        os.remove(str(archive_dir / CATALOG_FILE))
        with pytest.raises(ArchiveError, match="catalog"):
            Replica.bootstrap(_config(tmp_path / "rep"), str(archive_dir))
        primary.close()

    def test_uncertified_checkpoint_refused(self, tmp_path):
        primary = Database(_config(tmp_path / "primary"))
        primary.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        primary.start()
        slots = insert_accounts(primary, 4)
        table = primary.table("acct")
        # A dirty-region wild write: the incremental certifying audit
        # sees it, the checkpoint fails certification, and the archive
        # is refused with the typed error.
        FaultInjector(primary, seed=5).wild_write(
            address=table.record_address(slots[0]) + 8, length=8
        )
        with pytest.raises(ArchiveError, match="certification"):
            create_archive(primary, str(tmp_path / "archive"))


class TestReadOnlyServing:
    def test_replica_sessions_reject_writes_until_promoted(self, db_factory):
        db = db_factory(scheme="data_codeword", region_size=256)
        slots = insert_accounts(db, 3)
        with Server(db, read_only=True) as server:
            session = server.open_session()
            assert session.execute(Request(op="begin")).ok
            # Reads flow...
            resp = session.execute(Request(op="read", table="acct", slot=slots[0]))
            assert resp.ok and resp.value["balance"] == 100
            # ...mutations are rejected with a contained error.
            resp = session.execute(
                Request(op="update", table="acct", slot=slots[0], values={"balance": 1})
            )
            assert not resp.ok
            assert resp.error == "ServeError"
            assert "read-only" in resp.detail
            # Containment rolled the open transaction back.
            assert session.txn is None
            # Failover flips the whole node, existing sessions included.
            server.promote_to_primary()
            assert session.execute(Request(op="begin")).ok
            resp = session.execute(
                Request(op="update", table="acct", slot=slots[0], values={"balance": 1})
            )
            assert resp.ok
            assert session.execute(Request(op="commit")).ok

    def test_direct_session_read_only_flag(self, db):
        from repro.serve.session import Session

        session = Session(db, 1, read_only=True)
        with pytest.raises(ServeError, match="read-only"):
            session._dispatch(Request(op="insert", table="acct", values={}))
