"""Record-level ``Table.update`` through batched update windows.

A multi-field update used to open one maintenance window per field; it
now opens a single ``begin_updates`` window over all changed field
ranges and folds the codeword delta once.  The batched path must be
*identical* to the scalar path in everything but shape: same final
bytes, same undo behavior, and -- the meter-identity claim -- exactly
the same virtual charge counts event for event (the batch bulk-charges
``begin_update``/``end_update`` with the range count, so the totals
match the window-per-field reference by construction).
"""

from __future__ import annotations

import pytest

from tests.conftest import insert_accounts


def _meter_delta(after: dict, before: dict) -> dict:
    return {
        event: (
            counts[0] - before.get(event, (0, 0))[0],
            counts[1] - before.get(event, (0, 0))[1],
        )
        for event, counts in after.items()
        if counts != before.get(event, (0, 0))
    }


def _spy_windows(db):
    """Wrap the manager's window-open entry points with call counters."""
    counts = {"begin_updates": [], "begin_update": 0}
    mgr = db.manager
    real_batch, real_scalar = mgr.begin_updates, mgr.begin_update

    def begin_updates(txn, regions, **kwargs):
        counts["begin_updates"].append(len(regions))
        return real_batch(txn, regions, **kwargs)

    def begin_update(txn, address, length):
        counts["begin_update"] += 1
        return real_scalar(txn, address, length)

    mgr.begin_updates = begin_updates
    mgr.begin_update = begin_update
    return counts


class TestBatchedDispatch:
    def test_multi_field_update_uses_one_window(self, db_factory):
        db = db_factory(scheme="data_codeword")
        slots = insert_accounts(db, 1)
        counts = _spy_windows(db)
        txn = db.begin()
        db.table("acct").update(
            txn, slots[0], {"balance": 500, "name": "renamed"}
        )
        db.commit(txn)
        # One batched window covering both field ranges, no per-field
        # scalar windows.
        assert counts["begin_updates"] == [2]
        assert counts["begin_update"] == 0

    def test_single_field_update_stays_scalar(self, db_factory):
        db = db_factory(scheme="data_codeword")
        slots = insert_accounts(db, 1)
        counts = _spy_windows(db)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 500})
        db.commit(txn)
        assert counts["begin_updates"] == []
        assert counts["begin_update"] == 1


class TestBatchedScalarIdentity:
    """Same values through both paths: identical bytes and totals."""

    def _pair(self, db_factory):
        return (
            db_factory(scheme="data_codeword"),
            db_factory(scheme="data_codeword"),
        )

    def _apply(self, db, values, batched: bool):
        slots = insert_accounts(db, 3)
        txn = db.begin()
        table = db.table("acct")
        for slot in slots.values():
            if batched:
                table.update(txn, slot, values)
            else:
                table._update_scalar(txn, slot, values)
        db.commit(txn)
        return slots

    @pytest.mark.parametrize(
        "values",
        [
            {"balance": 1234, "name": "after"},
            {"balance": 0, "name": ""},
            {"id": 77, "balance": -5, "name": "all-fields"},
        ],
    )
    def test_bytes_identical(self, db_factory, values):
        db_batched, db_scalar = self._pair(db_factory)
        self._apply(db_batched, values, batched=True)
        self._apply(db_scalar, values, batched=False)
        assert (
            db_batched.memory.snapshot_segments()
            == db_scalar.memory.snapshot_segments()
        )

    def test_values_and_audit_identical(self, db_factory):
        db_batched, db_scalar = self._pair(db_factory)
        values = {"balance": 42, "name": "x"}
        slots_b = self._apply(db_batched, values, batched=True)
        slots_s = self._apply(db_scalar, values, batched=False)
        for db, slots in ((db_batched, slots_b), (db_scalar, slots_s)):
            txn = db.begin()
            for slot in slots.values():
                row = db.table("acct").read(txn, slot)
                assert row["balance"] == 42 and row["name"] == b"x"
            db.commit(txn)
            assert db.audit().clean

    def test_callable_values_supported(self, db_factory):
        db = db_factory(scheme="data_codeword")
        slots = insert_accounts(db, 1, balance=100)
        txn = db.begin()
        db.table("acct").update(
            txn,
            slots[0],
            {"balance": lambda cur: cur + 23, "name": "bumped"},
        )
        db.commit(txn)
        check = db.begin()
        row = db.table("acct").read(check, slots[0])
        db.commit(check)
        assert row["balance"] == 123 and row["name"] == b"bumped"

    def test_abort_restores_prior_bytes(self, db_factory):
        db = db_factory(scheme="data_codeword")
        slots = insert_accounts(db, 1, balance=100)
        reference = db.memory.snapshot_segments()
        txn = db.begin()
        db.table("acct").update(
            txn, slots[0], {"balance": 999, "name": "doomed"}
        )
        db.abort(txn)
        assert db.memory.snapshot_segments() == reference
        assert db.audit().clean

    def test_meter_identity_charge_totals(self, db_factory):
        """The batch coalesces *windows*, not charges: every event's
        count and virtual-time total matches the scalar path exactly."""
        db_batched, db_scalar = self._pair(db_factory)
        values = {"balance": 7, "name": "meter"}
        results = {}
        for name, db, batched in (
            ("batched", db_batched, True),
            ("scalar", db_scalar, False),
        ):
            insert_accounts(db, 2)
            before = db.meter.snapshot()
            txn = db.begin()
            table = db.table("acct")
            for slot in (0, 1):
                if batched:
                    table.update(txn, slot, values)
                else:
                    table._update_scalar(txn, slot, values)
            db.commit(txn)
            results[name] = _meter_delta(db.meter.snapshot(), before)
        assert results["batched"] == results["scalar"]
