"""The sharded serving front-end (``repro.serve.shard_server``).

Router sessions behind the bounded-admission server: the protocol must
match the single-database serving layer, contained errors must carry
the taxonomy's ``retryable`` bit, the cross-shard deadlock detector
must convict exactly the youngest cycle member, and -- under a
supervisor -- a request touching a recovering shard must fail fast
with a retryable error while other sessions proceed.
"""

from __future__ import annotations

import threading

import pytest

from repro import Field, FieldType, Schema
from repro.serve import Request, ShardServer
from repro.shard import ShardSupervisor, ShardedConfig, ShardedDatabase

ACCOUNT_SCHEMA = Schema(
    [
        Field("aid", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)


def make_db(tmp_path, name: str, n_shards: int = 2) -> ShardedDatabase:
    config = ShardedConfig(
        dir=str(tmp_path / name),
        n_shards=n_shards,
        mode="inproc",
        branches=n_shards,
        scheme="data_codeword",
    )
    db = ShardedDatabase.create(config, [("account", ACCOUNT_SCHEMA, 64, "aid")])
    # aid i lands on branch i % branches -> shard i % n_shards.
    for aid in range(8):
        db.submit_txn([("insert", "account", {"aid": aid, "balance": 100})])
    return db


def ok(server, session, **kwargs):
    response = server.submit(session, Request(**kwargs))
    assert response.ok, f"{response.op}: {response.error}: {response.detail}"
    return response.value


class TestShardSessionProtocol:
    def test_round_trip_across_shards(self, tmp_path):
        db = make_db(tmp_path, "round-trip")
        with ShardServer(db) as server:
            session = server.open_session()
            ok(server, session, op="begin")
            slot = ok(
                server, session, op="insert", table="account",
                values={"aid": 90, "balance": 500},
            )
            assert ok(server, session, op="lookup", table="account", key=90) == slot
            row = ok(server, session, op="query", table="account", key=90)
            assert row["balance"] == 500
            ok(server, session, op="update", table="account", slot=slot,
               values={"balance": 501})
            assert ok(server, session, op="read", table="account",
                      slot=slot)["balance"] == 501
            # Touch the other shard in the same transaction: commit runs
            # two-phase across both.
            ok(server, session, op="update", table="account",
               slot=ok(server, session, op="lookup", table="account", key=1),
               values={"balance": 150})
            ok(server, session, op="commit")
            assert session.txns_committed == 1
            assert len(session._open_txns) == 0
            check = server.open_session()
            ok(server, check, op="begin")
            assert ok(server, check, op="query", table="account",
                      key=1)["balance"] == 150
            ok(server, check, op="commit")
        db.close()

    def test_contained_errors_carry_retryable_bit(self, tmp_path):
        db = make_db(tmp_path, "retry-bit")
        with ShardServer(db) as server:
            session = server.open_session()
            # Protocol misuse: not retryable (the request must change).
            no_txn = server.submit(session, Request(op="commit"))
            assert not no_txn.ok and not no_txn.retryable
            # Lock conflict: retryable, and the victim txn stays OPEN at
            # this front-end (fail-fast locks; the client retries the op).
            a = server.open_session()
            b = server.open_session()
            ok(server, a, op="begin")
            ok(server, b, op="begin")
            slot = ok(server, a, op="lookup", table="account", key=0)
            ok(server, a, op="update", table="account", slot=slot,
               values={"balance": 1})
            denied = server.submit(
                b, Request(op="update", table="account", slot=slot,
                           values={"balance": 2}),
            )
            assert not denied.ok
            assert denied.error == "LockError"
            assert denied.retryable
            assert b._in_txn  # not rolled back: retry just the op
            ok(server, a, op="commit")
            retried = server.submit(
                b, Request(op="update", table="account", slot=slot,
                           values={"balance": 2}),
            )
            assert retried.ok
            ok(server, b, op="commit")
        db.close()

    def test_session_close_rolls_back_and_releases(self, tmp_path):
        db = make_db(tmp_path, "close")
        with ShardServer(db) as server:
            session = server.open_session()
            ok(server, session, op="begin")
            slot = ok(server, session, op="lookup", table="account", key=0)
            ok(server, session, op="update", table="account", slot=slot,
               values={"balance": 7})
            server.close_session(session)
            assert session.txns_aborted == 1
            assert server._holders == {}
            check = server.open_session()
            ok(server, check, op="begin")
            assert ok(server, check, op="query", table="account",
                      key=0)["balance"] == 100
            ok(server, check, op="commit")
        db.close()


class TestDeadlockDetection:
    def _conflict_slots(self, server):
        """Learn the slots of aid 0 (shard 0) and aid 1 (shard 1)."""
        scout = server.open_session()
        ok(server, scout, op="begin")
        s0 = ok(server, scout, op="lookup", table="account", key=0)
        s1 = ok(server, scout, op="lookup", table="account", key=1)
        ok(server, scout, op="commit")
        server.close_session(scout)
        return s0, s1

    def test_youngest_waiter_convicted_immediately(self, tmp_path):
        db = make_db(tmp_path, "dl-waiter")
        with ShardServer(db) as server:
            s0, s1 = self._conflict_slots(server)
            a = server.open_session()
            b = server.open_session()
            ok(server, a, op="begin")  # seq 1: older
            ok(server, b, op="begin")  # seq 2: younger
            ok(server, a, op="update", table="account", slot=s0,
               values={"balance": 10})
            ok(server, b, op="update", table="account", slot=s1,
               values={"balance": 20})
            # A -> B edge (no cycle yet): retryable conflict, A stays open.
            blocked = server.submit(
                a, Request(op="update", table="account", slot=s1,
                           values={"balance": 11}),
            )
            assert blocked.error == "LockError" and blocked.retryable
            # B -> A closes the cycle; B is youngest AND the waiter: it
            # aborts right here.
            convicted = server.submit(
                b, Request(op="update", table="account", slot=s0,
                           values={"balance": 21}),
            )
            assert convicted.error == "DeadlockError"
            assert convicted.retryable
            assert not b._in_txn
            assert server.deadlocks_broken == 1
            # The survivor now takes the contested lock and commits.
            retried = server.submit(
                a, Request(op="update", table="account", slot=s1,
                           values={"balance": 11}),
            )
            assert retried.ok, retried.detail
            ok(server, a, op="commit")
            # The victim's whole transaction retries cleanly.
            ok(server, b, op="begin")
            ok(server, b, op="update", table="account", slot=s0,
               values={"balance": 21})
            ok(server, b, op="commit")
            check = server.open_session()
            ok(server, check, op="begin")
            assert ok(server, check, op="query", table="account",
                      key=0)["balance"] == 21
            assert ok(server, check, op="query", table="account",
                      key=1)["balance"] == 11
            ok(server, check, op="commit")
        db.close()

    def test_third_party_victim_learns_at_next_request(self, tmp_path):
        db = make_db(tmp_path, "dl-third")
        with ShardServer(db) as server:
            s0, s1 = self._conflict_slots(server)
            a = server.open_session()
            b = server.open_session()
            ok(server, a, op="begin")  # seq 1: older
            ok(server, b, op="begin")  # seq 2: younger
            ok(server, a, op="update", table="account", slot=s0,
               values={"balance": 10})
            ok(server, b, op="update", table="account", slot=s1,
               values={"balance": 20})
            # B -> A edge first.
            blocked = server.submit(
                b, Request(op="update", table="account", slot=s0,
                           values={"balance": 21}),
            )
            assert blocked.error == "LockError"
            # A -> B closes the cycle.  A is older, so the *other*
            # session (B) is convicted; A just sees the conflict.
            conflict = server.submit(
                a, Request(op="update", table="account", slot=s1,
                           values={"balance": 11}),
            )
            assert conflict.error == "LockError"
            assert b._victim_cycle is not None
            # B learns its fate at its next request (nobody is blocked,
            # so there is no thread to wake).
            sentence = server.submit(
                b, Request(op="query", table="account", key=1),
            )
            assert sentence.error == "DeadlockError"
            assert not b._in_txn
            # A's retry now succeeds and the system quiesces.
            assert server.submit(
                a, Request(op="update", table="account", slot=s1,
                           values={"balance": 11}),
            ).ok
            ok(server, a, op="commit")
            assert server.graph.edges() == {}
        db.close()

    def test_stale_conviction_spares_successor_txn(self, tmp_path):
        """A conviction stamped while the victim's commit was in flight
        (the commit cleared _victim_cycle *before* releasing its graph
        edges, so the detector could still see the old branches) must
        not abort a transaction the session began afterwards: the
        stamped txn_seq no longer matches (REVIEW: _consume_conviction
        only checked _in_txn)."""
        db = make_db(tmp_path, "dl-stale")
        with ShardServer(db) as server:
            s0, _s1 = self._conflict_slots(server)
            b = server.open_session()
            ok(server, b, op="begin")
            convicted_seq = b.txn_seq
            ok(server, b, op="update", table="account", slot=s0,
               values={"balance": 5})
            ok(server, b, op="commit")
            ok(server, b, op="begin")  # unrelated successor transaction
            # The race's end state: a conviction naming the committed
            # transaction lands after its release wiped the flag.
            b._victim_cycle = ((b.session_id, 99), convicted_seq)
            survived = server.submit(
                b, Request(op="query", table="account", key=0),
            )
            assert survived.ok, survived.detail
            assert b._in_txn
            assert b.deadlock_aborts == 0
            ok(server, b, op="commit")
        db.close()

    def test_commit_clears_stale_edges(self, tmp_path):
        db = make_db(tmp_path, "dl-clear")
        with ShardServer(db) as server:
            s0, _s1 = self._conflict_slots(server)
            a = server.open_session()
            b = server.open_session()
            ok(server, a, op="begin")
            ok(server, b, op="begin")
            ok(server, a, op="update", table="account", slot=s0,
               values={"balance": 10})
            denied = server.submit(
                b, Request(op="update", table="account", slot=s0,
                           values={"balance": 20}),
            )
            assert denied.error == "LockError"
            assert server.graph.edges() != {}
            ok(server, a, op="commit")  # releases holds AND waiter edges
            assert server.graph.edges() == {}
            assert server.submit(
                b, Request(op="update", table="account", slot=s0,
                           values={"balance": 20}),
            ).ok
            ok(server, b, op="commit")
        db.close()


class TestDegradedServing:
    def test_recovering_shard_fails_fast_while_survivor_serves(self, tmp_path):
        db = make_db(tmp_path, "degraded")
        supervisor = ShardSupervisor(db).attach()
        with ShardServer(db) as server:
            session = server.open_session()
            db.crash_shard(1)
            ok(server, session, op="begin")
            # The dead shard's first touch reports the crash and the
            # session gets the typed fail-fast response.
            degraded = server.submit(
                session, Request(op="query", table="account", key=1)
            )
            assert not degraded.ok
            assert degraded.error == "ShardUnavailableError"
            assert degraded.retryable
            # The transaction was rolled back (contained error), but the
            # surviving shard serves a fresh one immediately.
            ok(server, session, op="begin")
            assert ok(server, session, op="query", table="account",
                      key=0)["balance"] == 100
            ok(server, session, op="commit")
            # One supervisor tick restarts the shard; the same session
            # then reads it again.
            supervisor.tick()
            ok(server, session, op="begin")
            assert ok(server, session, op="query", table="account",
                      key=1)["balance"] == 100
            ok(server, session, op="commit")
        supervisor.detach()
        db.close()


class TestThreadedShardServer:
    def test_concurrent_sessions_conserve_balances(self, tmp_path):
        db = make_db(tmp_path, "threaded")
        with ShardServer(db, threaded=True, workers=4, queue_depth=64) as server:
            n_clients, rounds = 4, 8
            failures: list[str] = []

            def client(worker: int) -> None:
                session = server.open_session()
                for round_no in range(rounds):
                    aid = (worker + round_no) % 4
                    response = server.submit(session, Request(op="begin"))
                    if not response.ok:
                        failures.append(response.detail or "begin failed")
                        return
                    moved = server.submit(
                        session,
                        Request(op="query", table="account", key=aid),
                    )
                    if moved.ok:
                        server.submit(session, Request(op="commit"))
                    else:
                        # Lock conflicts are the only acceptable failure,
                        # and they leave the txn open: abort it.
                        if moved.error not in ("LockError", "DeadlockError"):
                            failures.append(f"{moved.error}: {moved.detail}")
                        if moved.error == "LockError":
                            server.submit(session, Request(op="abort"))
                server.close_session(session)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert failures == []
            assert server.requests_admitted > 0
            assert server._holders == {}
        total = sum(
            db.submit_txn([("query", "account", aid)])[0]["balance"]
            for aid in range(8)
        )
        assert total == 800
        db.close()


class TestRetryableTaxonomy:
    def test_taxonomy_attributes(self):
        from repro.errors import (
            BackpressureError,
            ConfigError,
            DeadlockError,
            LockError,
            ReproError,
            ShardTimeoutError,
            ShardUnavailableError,
            TwoPhaseCommitError,
        )

        assert LockError("x").retryable
        assert DeadlockError(1, (1, 2)).retryable
        assert ShardUnavailableError(0, "recovering").retryable
        assert ShardTimeoutError(0, 1.0).retryable
        assert BackpressureError("full").retryable
        # Commit decided: replaying could double-apply -> NOT retryable.
        assert not TwoPhaseCommitError("x", gid="g1.1", committed=True).retryable
        # Vote never cast: presumed abort, safe to retry.
        assert TwoPhaseCommitError("x", gid="g1.1", committed=False).retryable
        assert not ConfigError("x").retryable
        assert not ReproError("x").retryable


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
