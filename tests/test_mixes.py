"""The read/write-mix workload generator."""

import pytest

from repro import DBConfig
from repro.bench.mixes import MixConfig, MixWorkload, build_mix_database, run_mix
from repro.errors import WorkloadError

TINY = MixConfig(rows=100, operations=60, ops_per_txn=20)


class TestConfig:
    def test_bad_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            MixConfig(read_fraction=1.5)

    def test_defaults(self):
        mix = MixConfig()
        assert 0.0 <= mix.read_fraction <= 1.0


class TestWorkload:
    def test_mix_respects_fraction_roughly(self, tmp_path):
        mix = MixConfig(rows=100, operations=200, ops_per_txn=50, read_fraction=0.8)
        db = build_mix_database(DBConfig(dir=str(tmp_path / "m")), mix)
        workload = MixWorkload(db, mix)
        workload.run()
        assert workload.reads_done + workload.writes_done == 200
        assert workload.reads_done > workload.writes_done * 2
        db.close()

    def test_all_reads_mutate_nothing(self, tmp_path):
        mix = MixConfig(rows=50, operations=40, ops_per_txn=10, read_fraction=1.0)
        db = build_mix_database(DBConfig(dir=str(tmp_path / "r")), mix)
        before = {
            slot: db.table("row").read_bytes(txn := db.begin(), slot)
            for slot in range(5)
        }
        db.commit(txn)
        MixWorkload(db, mix).run()
        txn = db.begin()
        for slot, expected in before.items():
            assert db.table("row").read_bytes(txn, slot) == expected
        db.commit(txn)
        db.close()

    def test_run_mix_reports_throughput_and_events(self, tmp_path):
        ops_per_sec, events = run_mix(DBConfig(dir=str(tmp_path / "t")), TINY)
        assert ops_per_sec > 0
        assert events["base_operation"][0] == TINY.operations

    def test_codewords_stay_consistent_under_mix(self, tmp_path):
        mix = MixConfig(rows=100, operations=100, ops_per_txn=25, read_fraction=0.3)
        db = build_mix_database(
            DBConfig(dir=str(tmp_path / "c"), scheme="data_cw"), mix
        )
        MixWorkload(db, mix).run()
        assert db.audit().clean
        db.close()
