"""Deferred codeword maintenance (extension scheme)."""

from tests.conftest import insert_accounts


def make(db_factory):
    return db_factory(scheme="deferred", region_size=4096)


class TestDeferral:
    def test_updates_accumulate_pending_deltas(self, db_factory):
        db = make(db_factory)
        insert_accounts(db, 5)
        assert db.scheme.pending_region_count > 0

    def test_stored_codewords_stale_until_flush(self, db_factory):
        db = make(db_factory)
        insert_accounts(db, 5)
        table = db.scheme.codeword_table
        assert table.scan_mismatches() != []  # stale before flush
        db.scheme.flush_pending()
        assert table.scan_mismatches() == []

    def test_audit_flushes_then_checks(self, db_factory):
        db = make(db_factory)
        insert_accounts(db, 5)
        assert db.audit().clean
        assert db.scheme.pending_region_count == 0

    def test_flush_is_idempotent(self, db_factory):
        db = make(db_factory)
        insert_accounts(db, 3)
        db.scheme.flush_pending()
        assert db.scheme.flush_pending() == 0
        assert db.scheme.codeword_table.scan_mismatches() == []


class TestDetection:
    def test_wild_write_detected_despite_deferral(self, db_factory):
        db = make(db_factory)
        insert_accounts(db, 5)
        db.memory.poke(db.table("acct").record_address(2), b"\x99\x98")
        report = db.audit()
        assert not report.clean

    def test_abort_paths_keep_deferred_deltas_consistent(self, db_factory):
        db = make(db_factory)
        table = db.table("acct")
        slots = insert_accounts(db, 3)
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 1})
        table.delete(txn, slots[1])
        db.abort(txn)
        assert db.audit().clean


class TestCostProfile:
    def test_deferred_charges_no_per_update_fixed_cost(self, db_factory):
        db = make(db_factory)
        slots = insert_accounts(db, 1)
        db.meter.reset()
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 5})
        db.commit(txn)
        assert db.meter.counts.get("cw_maint_fixed", 0) == 0
        assert db.meter.counts["deferred_update"] > 0

    def test_deferred_cheaper_per_update_than_inline(self, db_factory):
        costs_of = {}
        for scheme in ("data_cw", "deferred"):
            db = db_factory(scheme=scheme, region_size=4096)
            slots = insert_accounts(db, 1)
            db.meter.reset()
            start = db.clock.now_ns
            txn = db.begin()
            db.table("acct").update(txn, slots[0], {"balance": 5})
            db.commit(txn)
            costs_of[scheme] = db.clock.now_ns - start
        assert costs_of["deferred"] < costs_of["data_cw"]
