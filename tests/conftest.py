"""Shared fixtures: small databases with selectable protection schemes."""

from __future__ import annotations

import pytest

from repro import Database, DBConfig, Field, FieldType, Schema

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)


@pytest.fixture
def db_factory(tmp_path):
    """Create small single-table databases; closes them at teardown.

    Usage::

        db = db_factory(scheme="precheck", region_size=64)
    """
    created: list[Database] = []
    counter = [0]

    def make(
        scheme: str = "baseline",
        capacity: int = 200,
        record_history: bool = True,
        tables: list | None = None,
        **scheme_params,
    ) -> Database:
        counter[0] += 1
        config = DBConfig(
            dir=str(tmp_path / f"db{counter[0]}"),
            scheme=scheme,
            scheme_params=scheme_params,
            record_history=record_history,
        )
        db = Database(config)
        if tables is None:
            db.create_table("acct", ACCT_SCHEMA, capacity, key_field="id")
        else:
            for name, schema, cap, key in tables:
                db.create_table(name, schema, cap, key_field=key)
        db.start()
        created.append(db)
        return db

    yield make
    for db in created:
        try:
            db.close()
        except Exception:
            pass


@pytest.fixture
def db(db_factory):
    """A baseline-scheme single-table database."""
    return db_factory()


def insert_accounts(db: Database, count: int, balance: int = 100) -> dict[int, int]:
    """Insert ``count`` accounts; returns {id: slot}."""
    table = db.table("acct")
    txn = db.begin()
    slots = {
        i: table.insert(txn, {"id": i, "balance": balance, "name": f"acct{i}"})
        for i in range(count)
    }
    db.commit(txn)
    return slots
