"""The delete-history correctness oracles themselves."""

from repro.recovery.history import (
    HistoryRecorder,
    check_conflict_consistent,
    check_view_consistent,
    expected_final_state,
)


def make_history(events, committed, aborted=()):
    """events: (txn, kind, item, value) tuples."""
    history = HistoryRecorder()
    for txn, kind, item, value in events:
        if kind == "r":
            history.on_read(txn, "t", item, value)
        else:
            history.on_write(txn, "t", item, value)
    for txn in committed:
        history.on_commit(txn)
    for txn in aborted:
        history.on_abort(txn)
    return history


class TestConflictConsistency:
    def test_clean_history_passes_empty_delete_set(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "r", 0, b"a")], committed={1, 2}
        )
        assert check_conflict_consistent(history, set()) == []

    def test_read_from_deleted_writer_flagged(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "r", 0, b"a")], committed={1, 2}
        )
        violations = check_conflict_consistent(history, {1})
        assert len(violations) == 1
        assert "txn 2" in violations[0]

    def test_deleting_both_is_consistent(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "r", 0, b"a")], committed={1, 2}
        )
        assert check_conflict_consistent(history, {1, 2}) == []

    def test_read_of_own_write_ok_even_if_deleted_txn_wrote_before(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "w", 0, b"b"), (2, "r", 0, b"b")],
            committed={1, 2},
        )
        assert check_conflict_consistent(history, {1}) == []

    def test_aborted_txn_writes_ignored(self):
        history = make_history(
            [(1, "w", 0, b"a"), (3, "w", 0, b"x"), (2, "r", 0, b"a")],
            committed={1, 2},
            aborted={3},
        )
        assert check_conflict_consistent(history, set()) == []

    def test_intervening_surviving_write_heals(self):
        history = make_history(
            [(1, "w", 0, b"a"), (3, "w", 0, b"c"), (2, "r", 0, b"c")],
            committed={1, 2, 3},
        )
        assert check_conflict_consistent(history, {1}) == []


class TestViewConsistency:
    def test_value_match_passes(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "r", 0, b"a")], committed={1, 2}
        )
        assert check_view_consistent(history, set()) == []

    def test_deleted_writer_same_value_passes(self):
        """View-consistency keeps the reader if the value is unchanged."""
        history = make_history(
            [(1, "w", 0, b"a"), (3, "w", 0, b"a"), (2, "r", 0, b"a")],
            committed={1, 2, 3},
        )
        # Delete txn 3: the delete history still holds b"a" from txn 1.
        assert check_view_consistent(history, {3}) == []

    def test_deleted_writer_different_value_flagged(self):
        history = make_history(
            [(1, "w", 0, b"a"), (3, "w", 0, b"c"), (2, "r", 0, b"c")],
            committed={1, 2, 3},
        )
        violations = check_view_consistent(history, {3})
        assert len(violations) == 1

    def test_reads_by_deleted_txns_ignored(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "r", 0, b"garbage")], committed={1, 2}
        )
        assert check_view_consistent(history, {2}) == []


class TestExpectedFinalState:
    def test_last_surviving_write_wins(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "w", 0, b"b"), (3, "w", 1, b"z")],
            committed={1, 2, 3},
        )
        state = expected_final_state(history, deleted={2})
        assert state[("t", 0)] == b"a"
        assert state[("t", 1)] == b"z"

    def test_delete_event_yields_none(self):
        history = make_history(
            [(1, "w", 0, b"a"), (2, "w", 0, None)], committed={1, 2}
        )
        assert expected_final_state(history, set())[("t", 0)] is None

    def test_uncommitted_writes_excluded(self):
        history = make_history([(1, "w", 0, b"a")], committed=set())
        assert expected_final_state(history, set()) == {}
