"""Composable protection pipelines: folding, stacking, combined recovery.

Covers the §4.2/§4.3 scheme combinations made configurable by
``ProtectionPipeline``: capability folding and shared-maintainer policy,
``make_scheme`` stack parsing and its error messages, abandoned update
windows and physical-undo replay under multi-scheme stacks, and the
end-to-end acceptance scenario -- a stacked config surviving a wild
write with recovery driven by both audit and checksum evidence.
"""

import json

import pytest

from repro import Database, FaultInjector
from repro.bench.harness import RunResult, SchemeSpec, STACKED_ROWS, run_scheme
from repro.bench.reporting import bench_json_payload, run_result_to_dict
from repro.bench.tpcb import TPCBConfig
from repro.core import (
    CodewordSchemeBase,
    ProtectionPipeline,
    SCHEME_NAMES,
    make_scheme,
)
from repro.errors import ConfigError
from repro.txn.latches import EXCLUSIVE

from tests.conftest import insert_accounts


# ------------------------------------------------------- make_scheme errors


class TestMakeSchemeErrors:
    def test_unknown_scheme_names_itself_and_lists_valid(self):
        with pytest.raises(ConfigError) as exc:
            make_scheme("bogus")
        message = str(exc.value)
        assert "'bogus'" in message
        for name in SCHEME_NAMES:
            assert name in message

    def test_unknown_stack_member_rejected(self):
        with pytest.raises(ConfigError) as exc:
            make_scheme("data_cw+bogus")
        assert "'bogus'" in str(exc.value)

    def test_empty_stack_member_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("data_cw+")

    def test_duplicate_member_rejected_through_alias(self):
        # "codeword" is an alias of data_cw; the stack resolves both to
        # the same canonical scheme.
        with pytest.raises(ConfigError):
            make_scheme("data_cw+codeword")

    def test_alias_resolves_to_canonical_scheme(self):
        assert make_scheme("data_codeword").name == "data_cw"

    def test_param_no_member_accepts_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("data_cw+read_logging", bogus_param=1)

    def test_deferred_cannot_stack_with_precheck(self):
        with pytest.raises(ConfigError) as exc:
            make_scheme("deferred+precheck")
        assert "stale" in str(exc.value)


# -------------------------------------------------------- capability folding


class TestPipelineFolding:
    def test_stack_builds_pipeline_with_folded_capabilities(self):
        pipeline = make_scheme("data_cw+read_logging")
        assert isinstance(pipeline, ProtectionPipeline)
        assert pipeline.name == "data_cw+read_logging"
        assert pipeline.uses_codewords
        assert pipeline.logs_reads
        assert not pipeline.logs_read_checksums
        assert not pipeline.combines_evidence
        assert pipeline.direct_protection == "detect"
        assert pipeline.indirect_protection == "detect+correct"

    def test_checksum_plus_audit_member_combines_evidence(self):
        pipeline = make_scheme("data_cw+cw_read_logging")
        assert pipeline.logs_read_checksums
        assert pipeline.combines_evidence

    def test_checksums_alone_do_not_combine(self):
        # A single-member pipeline over cw_read_logging has no
        # audit-only codeword member; recovery stays view-consistent.
        pipeline = ProtectionPipeline([make_scheme("cw_read_logging")])
        assert pipeline.logs_read_checksums
        assert not pipeline.combines_evidence

    def test_codeword_members_share_one_maintainer(self):
        pipeline = make_scheme("data_cw+cw_read_logging")
        members = [m for m in pipeline.members if isinstance(m, CodewordSchemeBase)]
        assert len(members) == 2
        assert members[0].maintainer is members[1].maintainer
        assert members[0].maintainer is pipeline.maintainer

    def test_shared_maintainer_takes_smallest_region(self):
        pipeline = ProtectionPipeline(
            [
                make_scheme("data_cw", region_size=128),
                make_scheme("read_logging", region_size=32),
            ]
        )
        assert pipeline.maintainer.region_size == 32
        assert pipeline.region_size == 32

    def test_shared_maintainer_takes_strictest_latch_mode(self):
        pipeline = make_scheme("precheck+read_logging", region_size=64)
        assert pipeline.maintainer.update_latch_mode == EXCLUSIVE

    def test_prevention_member_makes_indirect_unneeded(self):
        pipeline = make_scheme("hardware+read_logging")
        assert pipeline.direct_protection == "prevent"
        assert pipeline.indirect_protection == "unneeded"
        assert pipeline.member("hardware").guards_pages

    def test_single_scheme_config_exposes_bare_scheme(self, db_factory):
        db = db_factory(scheme="data_cw")
        assert db.pipeline.sole is db.scheme
        assert not isinstance(db.scheme, ProtectionPipeline)

    def test_stacked_config_exposes_pipeline(self, db_factory):
        db = db_factory(scheme="data_cw+read_logging")
        assert db.pipeline.sole is None
        assert db.scheme is db.pipeline
        report = db.report()
        assert report["scheme"]["members"] == ["data_cw", "read_logging"]


# ----------------------------------------- windows and undo under a stack


class TestStackedWindowsAndUndo:
    def _open_window_then_abort(self, db, poke=b"\xff" * 8):
        """Open an update window, scribble, abort before end_update."""
        table = db.table("acct")
        slots = insert_accounts(db, 4)
        address = table.record_address(slots[3]) + 8  # balance field
        txn = db.begin()
        db.manager.begin_operation(txn, "acct:abandon")
        db.manager.begin_update(txn, address, 8)
        db.manager.write(txn, address, poke)
        db.abort(txn)
        return slots

    def test_abandoned_window_rolls_back_cleanly(self, db_factory):
        """Abort inside an open window: close_update_window + undo with
        codeword_applied=False must leave codewords and latches intact."""
        db = db_factory(scheme="data_cw+cw_read_logging")
        slots = self._open_window_then_abort(db)
        # The undo ran with codeword_applied=False: the stored codeword
        # still matched the old content, so the restore left it alone.
        # Double-maintaining it would make this audit fail.
        assert db.audit().clean
        assert not db.pipeline.protection_latches.any_held()
        txn = db.begin()
        assert db.table("acct").read(txn, slots[3])["balance"] == 100
        db.commit(txn)

    def test_abandoned_window_under_hardware_stack(self, db_factory):
        """Page-guarded stack: rollback writes go through expose/cover."""
        db = db_factory(scheme="hardware+data_cw")
        slots = self._open_window_then_abort(db)
        assert db.audit().clean
        txn = db.begin()
        assert db.table("acct").read(txn, slots[3])["balance"] == 100
        # The pages are covered again: a fresh prescribed update works.
        db.table("acct").update(txn, slots[2], {"balance": 222})
        db.commit(txn)

    def test_completed_update_undo_fixes_codeword(self, db_factory):
        """Operation abort after end_update replays a PhysicalUndo with
        codeword_applied=True: the shared maintainer must fold the
        restore back into the one shared table."""
        db = db_factory(scheme="data_cw+read_logging")
        table = db.table("acct")
        slots = insert_accounts(db, 4)
        address = table.record_address(slots[1]) + 8
        txn = db.begin()
        db.manager.begin_operation(txn, "acct:undone")
        db.manager.update(txn, address, (999).to_bytes(8, "little"))
        entry = txn.undo_log.entries[-1]
        assert entry.codeword_applied
        db.manager.abort_operation(txn)
        db.commit(txn)
        assert db.audit().clean
        txn = db.begin()
        assert table.read(txn, slots[1])["balance"] == 100
        db.commit(txn)


# ------------------------------------------------ end-to-end stacked recovery


def corrupted_stacked_db(db_factory, scheme, **params):
    db = db_factory(scheme=scheme, **params)
    slots = insert_accounts(db, 12)
    db.checkpoint()
    return db, slots


def crash_and_recover(db):
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)
    return Database.recover(db.config)


class TestStackedRecovery:
    def test_acceptance_stack_runs_and_recovers(self, db_factory):
        """The ISSUE acceptance config: data_codeword+read_logging runs
        the workload and survives a wild write with delete-transaction
        recovery (audit evidence drives the CorruptDataTable)."""
        db, slots = corrupted_stacked_db(
            db_factory, "data_codeword+read_logging", region_size=64
        )
        table = db.table("acct")
        injector = FaultInjector(db, seed=7)
        injector.wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        bad = table.read(txn, slots[1])["balance"]
        table.update(txn, slots[2], {"balance": bad})
        db.commit(txn)
        carrier = txn.txn_id
        txn = db.begin()
        table.update(txn, slots[5], {"balance": 555})
        db.commit(txn)
        clean = txn.txn_id
        db2, report = crash_and_recover(db)
        assert report.mode == "delete-transaction"
        assert carrier in report.deleted_set
        assert clean not in report.deleted_set
        txn = db2.begin()
        t2 = db2.table("acct")
        assert t2.read(txn, slots[1])["balance"] == 100
        assert t2.read(txn, slots[2])["balance"] == 100
        assert t2.read(txn, slots[5])["balance"] == 555
        db2.commit(txn)
        assert db2.audit().clean

    def test_combined_evidence_recovery(self, db_factory):
        """data_cw+cw_read_logging: recovery unions both evidence kinds.

        The carrier is recruited by its read checksum; a blind writer
        into the corrupt region has matching checksums everywhere (the
        wild write never touched the bytes it read and wrote) and can
        only be recruited through the audit-populated CorruptDataTable.
        """
        db, slots = corrupted_stacked_db(
            db_factory, "data_cw+cw_read_logging", region_size=64
        )
        table = db.table("acct")
        injector = FaultInjector(db, seed=7)
        injector.wild_write(table.record_address(slots[1]) + 8, 8)
        # Carrier: reads the corrupt balance, spreads it.
        txn = db.begin()
        bad = table.read(txn, slots[1])["balance"]
        table.update(txn, slots[2], {"balance": bad})
        db.commit(txn)
        carrier = txn.txn_id
        # Blind writer into the corrupt 64-byte region (slot 0 shares it
        # with slot 1): checksums cannot implicate it.
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 77})
        db.commit(txn)
        blind_writer = txn.txn_id
        # Clean bystander in an uncorrupted region.
        txn = db.begin()
        table.update(txn, slots[5], {"balance": 555})
        db.commit(txn)
        clean = txn.txn_id

        db2, report = crash_and_recover(db)
        assert report.mode == "delete-transaction-combined"
        assert report.recruited[carrier] == "read checksum mismatch"
        assert blind_writer in report.deleted_set
        assert "marked corrupt" in report.recruited[blind_writer]
        assert clean not in report.deleted_set
        assert report.corrupt_range_count > 0  # audit evidence was live

        txn = db2.begin()
        t2 = db2.table("acct")
        assert t2.read(txn, slots[0])["balance"] == 100
        assert t2.read(txn, slots[1])["balance"] == 100
        assert t2.read(txn, slots[2])["balance"] == 100
        assert t2.read(txn, slots[5])["balance"] == 555
        db2.commit(txn)
        assert db2.audit().clean

    def test_view_mode_misses_the_blind_writer(self, db_factory):
        """Control for the combined test: pure checksum evidence does not
        recruit the blind writer -- the gap the combination closes."""
        db, slots = corrupted_stacked_db(db_factory, "cw_read_logging", region_size=64)
        table = db.table("acct")
        injector = FaultInjector(db, seed=7)
        injector.wild_write(table.record_address(slots[1]) + 8, 8)
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 77})
        db.commit(txn)
        blind_writer = txn.txn_id
        db2, report = crash_and_recover(db)
        assert report.mode == "delete-transaction-view"
        assert blind_writer not in report.deleted_set


# ------------------------------------------------------------ bench surface


class TestStackedBench:
    def test_stacked_rows_have_no_paper_counterparts(self):
        assert all("+" in spec.scheme for spec in STACKED_ROWS)
        assert all(spec.paper_ops_per_sec is None for spec in STACKED_ROWS)

    def test_harness_runs_a_stacked_config(self, tmp_path):
        spec = SchemeSpec("Stack", "data_cw+read_logging", {})
        result = run_scheme(spec, TPCBConfig().scaled(0.001), str(tmp_path / "run"))
        assert result.operations > 0
        assert result.ops_per_sec > 0
        assert result.space_overhead_pct > 0

    def test_json_report_records_scheme_params(self):
        result = RunResult(
            label="Data CW w/Precheck, 64 byte",
            scheme="precheck",
            operations=10,
            elapsed_virtual_s=1.0,
            ops_per_sec=10.0,
            slowdown_pct=None,
            paper_ops_per_sec=None,
            paper_slowdown_pct=None,
            space_overhead_pct=0.1,
            events={},
            scheme_params={"region_size": 64, "costs": object()},
        )
        payload = run_result_to_dict(result)
        assert payload["scheme_params"]["region_size"] == 64
        # Non-primitive params are stringified, keeping the payload
        # JSON-serializable.
        assert isinstance(payload["scheme_params"]["costs"], str)
        json.dumps(bench_json_payload(table2=[result]))
