"""Corrupt-region quarantine: detected corruption is never served.

A failed audit or read precheck places the corrupt regions in quarantine.
From then on reads overlapping them raise :class:`QuarantinedRegionError`
(or transparently repair under ``quarantine_repair``), audits skip and
report them without advancing ``Audit_SN``, and checkpoint certification
keeps auditing them -- a corrupt image must never certify.
"""

import pytest

from repro import Database, DBConfig, FaultInjector
from repro.errors import ConfigError, QuarantinedRegionError

from tests.conftest import ACCT_SCHEMA, insert_accounts


def make_db(tmp_path, name, scheme="data_cw", **config_kwargs) -> Database:
    config = DBConfig(
        dir=str(tmp_path / name),
        scheme=scheme,
        scheme_params={"region_size": 256},
        quarantine=True,
        **config_kwargs,
    )
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    return db


def corrupt_one_record(db, slot) -> int:
    """Corrupt ``slot``'s record; returns its protection-region id."""
    table = db.table("acct")
    address = table.record_address(slot)
    FaultInjector(db, seed=7).wild_write(address + 8, 8)
    cw_table = db.pipeline.maintainer.table
    return next(iter(cw_table.regions_spanning(address, table.schema.record_size)))


class TestConfigValidation:
    def test_quarantine_needs_codeword_scheme(self, tmp_path):
        with pytest.raises(ConfigError):
            Database(DBConfig(dir=str(tmp_path / "q"), scheme="baseline", quarantine=True))

    def test_quarantine_repair_implies_quarantine(self, tmp_path):
        config = DBConfig(
            dir=str(tmp_path / "qr"), scheme="data_cw", quarantine_repair=True
        )
        db = Database(config)
        assert db.quarantine_enabled
        db.close()


class TestQuarantineBlocksReads:
    def test_detected_region_raises_on_read(self, tmp_path):
        db = make_db(tmp_path, "block")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        region = corrupt_one_record(db, slots[1])
        report = db.audit()
        assert not report.clean
        assert region in db.quarantined_regions()
        txn = db.begin()
        with pytest.raises(QuarantinedRegionError) as exc:
            db.table("acct").read(txn, slots[1])
        assert region in exc.value.region_ids
        db.abort(txn)
        db.close()

    def test_unaffected_records_still_readable(self, tmp_path):
        db = make_db(tmp_path, "other")
        slots = insert_accounts(db, 12)
        db.checkpoint()
        corrupt_one_record(db, slots[0])
        db.audit()
        # Records in other regions are not collateral damage.  With
        # 256-byte regions and 32-byte records, slot 11 lives two
        # regions away from slot 0.
        txn = db.begin()
        assert db.table("acct").read(txn, slots[11])["balance"] == 100
        db.commit(txn)
        db.close()

    def test_precheck_detection_quarantines_on_first_read(self, tmp_path):
        db = make_db(tmp_path, "pre", scheme="precheck")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        region = corrupt_one_record(db, slots[1])
        # No audit ran: the *read precheck* makes the conviction, and the
        # region goes straight to quarantine.
        txn = db.begin()
        with pytest.raises(QuarantinedRegionError):
            db.table("acct").read(txn, slots[1])
        db.abort(txn)
        assert region in db.quarantined_regions()
        # The second read fails on the quarantine itself, not a re-check.
        txn = db.begin()
        with pytest.raises(QuarantinedRegionError):
            db.table("acct").read(txn, slots[1])
        db.abort(txn)
        db.close()


class TestDegradedAudits:
    def test_audit_skips_and_reports_quarantined(self, tmp_path):
        db = make_db(tmp_path, "deg")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        region = corrupt_one_record(db, slots[1])
        db.audit()  # convicts and quarantines
        sn_before = db.auditor.last_clean_audit_lsn
        report = db.audit(range(db.pipeline.maintainer.table.region_count))
        # The known-corrupt region is skipped, not re-failed...
        assert report.clean
        assert report.degraded
        assert region in report.quarantined_regions
        # ...and a degraded audit never advances Audit_SN: it certifies
        # only what it actually looked at.
        assert db.auditor.last_clean_audit_lsn == sn_before
        db.close()

    def test_checkpoint_certification_never_skips(self, tmp_path):
        db = make_db(tmp_path, "cert")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        anchor_before = db.checkpointer.read_anchor()
        corrupt_one_record(db, slots[1])
        db.audit()
        result = db.checkpoint()
        # Certification audits everything, quarantine or not: a corrupt
        # image must never become the recovery starting point.
        assert not result.certified
        assert db.checkpointer.read_anchor() == anchor_before
        db.close()


class TestRepair:
    def test_repair_quarantined_restores_and_releases(self, tmp_path):
        db = make_db(tmp_path, "repair")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        corrupt_one_record(db, slots[1])
        db.audit()
        assert db.quarantined_regions()
        repaired = db.repair_quarantined()
        assert repaired == len(db.quarantined_regions()) or repaired > 0
        assert db.quarantined_regions() == ()
        txn = db.begin()
        assert db.table("acct").read(txn, slots[1])["balance"] == 100
        db.commit(txn)
        assert db.audit().clean
        db.close()

    def test_quarantine_repair_serves_reads_transparently(self, tmp_path):
        db = make_db(tmp_path, "auto", quarantine_repair=True)
        slots = insert_accounts(db, 4)
        db.checkpoint()
        region = corrupt_one_record(db, slots[1])
        db.audit()
        assert region in db.quarantined_regions()
        # The read repairs the region in place instead of raising.
        txn = db.begin()
        assert db.table("acct").read(txn, slots[1])["balance"] == 100
        db.commit(txn)
        assert region not in db.quarantined_regions()
        assert db.audit().clean
        db.close()

    def test_repair_covers_committed_updates(self, tmp_path):
        db = make_db(tmp_path, "redo")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        txn = db.begin()
        db.table("acct").update(txn, slots[1], {"balance": 555})
        db.commit(txn)
        corrupt_one_record(db, slots[1])
        db.audit()
        db.repair_quarantined()
        # Repair replays the post-checkpoint commit, not just the image.
        txn = db.begin()
        assert db.table("acct").read(txn, slots[1])["balance"] == 555
        db.commit(txn)
        db.close()


class TestQuarantineLifecycle:
    def test_rebuild_clears_quarantine(self, tmp_path):
        db = make_db(tmp_path, "rebuild")
        insert_accounts(db, 4)
        maintainer = db.pipeline.maintainer
        maintainer.quarantine([0, 1])
        assert db.quarantined_regions() == (0, 1)
        maintainer.rebuild()
        # Rebuilding recomputes every codeword: old verdicts are stale.
        assert db.quarantined_regions() == ()
        db.close()

    def test_recovery_starts_with_empty_quarantine(self, tmp_path):
        db = make_db(tmp_path, "recover")
        slots = insert_accounts(db, 4)
        db.checkpoint()
        corrupt_one_record(db, slots[1])
        report = db.audit()
        assert db.quarantined_regions()
        db.crash_with_corruption(report)
        db2, _ = Database.recover(db.config)
        # Recovery repaired or deleted the corruption and recomputed the
        # codewords; the quarantine verdicts died with the crash.
        assert db2.quarantined_regions() == ()
        assert db2.audit().clean
        db2.close()
