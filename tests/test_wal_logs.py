"""Local undo/redo logs and the system log."""

import pytest

from repro.errors import LogError
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.wal.local_log import LocalRedoLog, LogicalUndoEntry, PhysicalUndo, UndoLog
from repro.wal.records import LogicalUndo, ReadRecord, TxnCommitRecord, UpdateRecord
from repro.wal.system_log import SystemLog


def physical(seq, op_id=1, address=0, image=b"old!"):
    return PhysicalUndo(seq, op_id, address, image, codeword_applied=False)


def logical(seq, op_id=1, key="t:1"):
    return LogicalUndoEntry(seq, op_id, 1, key, LogicalUndo("undo_insert", ("t", 1)))


class TestUndoLog:
    def test_append_and_len(self):
        log = UndoLog()
        log.append_physical(physical(1))
        log.append_physical(physical(2))
        assert len(log) == 2

    def test_replace_operation_strips_trailing_physical(self):
        log = UndoLog()
        log.append_physical(physical(1, op_id=1))
        log.append_physical(physical(2, op_id=2))
        log.append_physical(physical(3, op_id=2))
        log.replace_operation(2, logical(4, op_id=2))
        kinds = [type(e).__name__ for e in log]
        assert kinds == ["PhysicalUndo", "LogicalUndoEntry"]

    def test_drop_operation(self):
        log = UndoLog()
        log.append_physical(physical(1, op_id=1))
        log.append_physical(physical(2, op_id=2))
        dropped = log.drop_operation(2)
        assert [e.seq for e in dropped] == [2]
        assert len(log) == 1

    def test_codec_roundtrip(self):
        log = UndoLog()
        entry = physical(1, address=0x50, image=b"\x01\x02\x03")
        entry.codeword_applied = True
        log.append_physical(entry)
        log.entries.append(logical(2))
        decoded, _ = UndoLog.decode(log.encode())
        assert len(decoded) == 2
        restored = decoded.entries[0]
        assert isinstance(restored, PhysicalUndo)
        assert restored.address == 0x50
        assert restored.image == b"\x01\x02\x03"
        assert restored.codeword_applied is True
        assert decoded.entries[1].undo.op_name == "undo_insert"

    def test_decode_bad_tag_rejected(self):
        with pytest.raises(LogError):
            UndoLog.decode(b"\x01\x00\x00\x00Z")

    def test_empty_codec(self):
        decoded, _ = UndoLog.decode(UndoLog().encode())
        assert len(decoded) == 0


class TestLocalRedoLog:
    def test_mark_and_take(self):
        log = LocalRedoLog()
        log.append(UpdateRecord(1, 0, b"a"))
        mark = log.mark()
        log.append(UpdateRecord(1, 1, b"b"))
        log.append(ReadRecord(1, 2, 4))
        taken = log.take_from(mark)
        assert len(taken) == 2
        assert len(log) == 1

    def test_discard_from(self):
        log = LocalRedoLog()
        log.append(UpdateRecord(1, 0, b"a"))
        log.append(UpdateRecord(1, 1, b"b"))
        log.discard_from(1)
        assert len(log) == 1


class TestSystemLog:
    def make(self, tmp_path):
        meter = Meter(VirtualClock(), DEFAULT_COSTS)
        return SystemLog(str(tmp_path / "sys.log"), meter)

    def test_append_assigns_dense_lsns(self, tmp_path):
        log = self.make(tmp_path)
        assert log.append(TxnCommitRecord(1)) == 0
        assert log.append(TxnCommitRecord(2)) == 1
        log.close()

    def test_flush_then_scan(self, tmp_path):
        log = self.make(tmp_path)
        log.append(UpdateRecord(1, 5, b"x"))
        log.append(TxnCommitRecord(1))
        end = log.flush()
        assert end == 2
        records = list(log.scan())
        assert [lsn for lsn, _ in records] == [0, 1]
        assert isinstance(records[0][1], UpdateRecord)
        log.close()

    def test_scan_from_lsn(self, tmp_path):
        log = self.make(tmp_path)
        for i in range(5):
            log.append(TxnCommitRecord(i))
        log.flush()
        assert [lsn for lsn, _ in log.scan(3)] == [3, 4]
        log.close()

    def test_unflushed_tail_not_scanned(self, tmp_path):
        log = self.make(tmp_path)
        log.append(TxnCommitRecord(1))
        log.flush()
        log.append(TxnCommitRecord(2))
        assert len(list(log.scan())) == 1
        log.close()

    def test_crash_loses_tail(self, tmp_path):
        log = self.make(tmp_path)
        log.append(TxnCommitRecord(1))
        log.flush()
        log.append(TxnCommitRecord(2))
        log.crash()
        assert log.tail == []

    def test_flush_empty_tail_is_noop(self, tmp_path):
        log = self.make(tmp_path)
        assert log.flush() == 0
        log.close()

    def test_charge_flag_skips_metering(self, tmp_path):
        log = self.make(tmp_path)
        before = dict(log.meter.counts)
        log.append(TxnCommitRecord(1), charge=False)
        assert dict(log.meter.counts) == before
        log.close()

    def test_flushes_accumulate_across_reopen(self, tmp_path):
        """Appending to an existing file preserves earlier records."""
        log = self.make(tmp_path)
        log.append(TxnCommitRecord(1))
        log.flush()
        log.close()
        log2 = SystemLog(str(tmp_path / "sys.log"), Meter(VirtualClock(), DEFAULT_COSTS))
        log2.next_lsn = 1
        log2.append(TxnCommitRecord(2))
        log2.flush()
        assert [lsn for lsn, _ in log2.scan()] == [0, 1]
        log2.close()
