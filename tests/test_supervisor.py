"""The shard supervisor: crash detection, certified restart, in-doubt
decision repair, degraded-mode serving, and the wait-for graph.

Inproc shards make the lifecycle deterministic (``crash_shard`` is the
exact stand-in for a dead worker); a small set of process-mode tests
covers the real thing -- SIGKILLed workers, hung workers detected by
pipe timeout, and heartbeat probes.
"""

from __future__ import annotations

import time

import pytest

from repro import Field, FieldType, Schema
from repro.errors import (
    ShardTimeoutError,
    ShardUnavailableError,
    TwoPhaseCommitError,
)
from repro.faults.workers import hang_worker, kill_worker
from repro.shard import (
    ShardSupervisor,
    ShardedConfig,
    ShardedDatabase,
    SupervisorConfig,
    WaitForGraph,
)
from repro.shard.supervisor import DOWN, RECOVERING, SERVING

ACCOUNT_SCHEMA = Schema(
    [
        Field("aid", FieldType.INT64),
        Field("balance", FieldType.INT64),
    ]
)

TRANSFER = [
    ("add", "account", 0, "balance", -30),
    ("add", "account", 1, "balance", 30),
]


def _build(tmp_path, name: str, mode: str = "inproc",
           config: SupervisorConfig | None = None):
    sharded = ShardedConfig(
        dir=str(tmp_path / name),
        n_shards=2,
        mode=mode,
        branches=2,
        scheme="data_codeword",
    )
    db = ShardedDatabase.create(sharded, [("account", ACCOUNT_SCHEMA, 32, "aid")])
    db.submit_txn([("insert", "account", {"aid": 0, "balance": 100})])
    db.submit_txn([("insert", "account", {"aid": 1, "balance": 100})])
    supervisor = ShardSupervisor(db, config or SupervisorConfig()).attach()
    return db, supervisor


def _balances(db) -> tuple[int, int]:
    a = db.submit_txn([("query", "account", 0)])[0]["balance"]
    b = db.submit_txn([("query", "account", 1)])[0]["balance"]
    return a, b


class TestWaitForGraph:
    def test_no_cycle(self):
        graph = WaitForGraph()
        graph.add(1, 2)
        graph.add(2, 3)
        assert graph.cycle_from(1) is None

    def test_two_cycle(self):
        graph = WaitForGraph()
        graph.add(1, 2)
        graph.add(2, 1)
        assert graph.cycle_from(1) == (1, 2)
        assert graph.cycle_from(2) == (2, 1)

    def test_three_cycle(self):
        graph = WaitForGraph()
        graph.add(1, 2)
        graph.add(2, 3)
        graph.add(3, 1)
        assert graph.cycle_from(1) == (1, 2, 3)

    def test_self_edge_ignored(self):
        graph = WaitForGraph()
        graph.add(1, 1)
        assert graph.cycle_from(1) is None

    def test_clear_waiter_breaks_cycle(self):
        graph = WaitForGraph()
        graph.add(1, 2)
        graph.add(2, 1)
        graph.clear_waiter(2)
        assert graph.cycle_from(1) is None

    def test_clear_holder_breaks_cycle(self):
        graph = WaitForGraph()
        graph.add(1, 2)
        graph.add(2, 1)
        graph.clear_holder(1)
        assert graph.cycle_from(1) is None
        assert graph.edges() == {1: (2,)}


class TestCrashDetectionAndRestart:
    def test_routed_call_reports_crash_and_fails_fast(self, tmp_path):
        db, supervisor = _build(tmp_path, "report")
        db.crash_shard(1)
        # The next routed call discovers the death, reports it, and the
        # caller gets the fail-fast retryable error -- not ShardCrashed.
        with pytest.raises(ShardUnavailableError) as err:
            db.submit_txn([("query", "account", 1)])
        assert err.value.retryable
        assert supervisor.state_of(1) == RECOVERING
        # Surviving shard serves throughout.
        assert db.submit_txn([("query", "account", 0)])[0]["balance"] == 100
        db.close()

    def test_heartbeat_detects_silent_death(self, tmp_path):
        db, supervisor = _build(tmp_path, "heartbeat")
        db.crash_shard(0)
        assert supervisor.state_of(0) == SERVING  # not yet noticed
        supervisor.tick()
        # One tick: heartbeat flags it AND the restart pass recovers it.
        assert supervisor.heartbeat_failures == 1
        assert supervisor.state_of(0) == SERVING
        assert _balances(db) == (100, 100)
        db.close()

    def test_restart_recovers_committed_state(self, tmp_path):
        db, supervisor = _build(tmp_path, "restart")
        db.submit_txn(TRANSFER)
        db.crash_shard(1)
        supervisor.tick()
        assert supervisor.state_of(1) == SERVING
        assert _balances(db) == (70, 130)
        assert supervisor.summary()["restarts"] == 1
        db.close()

    def test_stale_crash_report_ignored(self, tmp_path):
        db, supervisor = _build(tmp_path, "stale")
        old_handle = db.shards[0]
        db.crash_shard(0)
        supervisor.tick()  # restarts; db.shards[0] is a new handle
        supervisor.report_crash(0, old_handle, reason="stale")
        assert supervisor.state_of(0) == SERVING
        db.close()

    def test_max_restarts_parks_shard_down(self, tmp_path):
        db, supervisor = _build(
            tmp_path, "down", config=SupervisorConfig(max_restarts=2)
        )
        db.crash_shard(1)
        supervisor.report_crash(1, db.shards[1], reason="test")

        def broken(shard_id):
            raise RuntimeError("recovery keeps failing")

        supervisor._recover_handle = broken
        supervisor.tick()
        supervisor.tick()
        assert supervisor.state_of(1) == RECOVERING  # still trying
        supervisor.tick()
        assert supervisor.state_of(1) == DOWN
        with pytest.raises(ShardUnavailableError) as err:
            db.submit_txn([("query", "account", 1)])
        assert err.value.state == "down"
        # The survivor still serves; heal() reports the node degraded.
        assert db.submit_txn([("query", "account", 0)])[0]["balance"] == 100
        assert supervisor.heal(timeout_s=0.2) is False
        db.close()

    def test_unavailability_window_recorded(self, tmp_path):
        db, supervisor = _build(tmp_path, "window")
        db.crash_shard(0)
        supervisor.report_crash(0, db.shards[0], reason="test")
        assert len(supervisor.unavailability_windows(0)) == 1  # open
        supervisor.tick()
        windows = supervisor.unavailability_windows(0)
        assert len(windows) == 1
        start, end = windows[0]
        assert end >= start
        shard_summary = supervisor.summary()["shards"][0]
        assert shard_summary["unavailability_windows"] == 1
        assert shard_summary["state"] == SERVING
        db.close()

    def test_detach_restores_unsupervised_contract(self, tmp_path):
        from repro.shard.shard import ShardCrashed

        db, supervisor = _build(tmp_path, "detach")
        supervisor.detach()
        assert db.supervisor is None
        db.crash_shard(1)
        with pytest.raises(ShardCrashed):
            db.submit_txn([("query", "account", 1)])
        db.close()


class TestDecisionRepair:
    def test_pending_decision_delivered_to_serving_shard(self, tmp_path):
        db, supervisor = _build(tmp_path, "repair")
        # A decide for an unknown gid answers "unknown" (already
        # resolved), which counts as delivered.
        supervisor.queue_decision_delivery("g9.9", [0])
        assert supervisor.pending_decisions == {"g9.9": (0,)}
        result = supervisor.tick()
        assert result["decisions_delivered"] == 1
        assert supervisor.pending_decisions == {}
        assert supervisor.decisions_repaired == 1
        db.close()

    def test_restart_resolves_pending_decisions(self, tmp_path):
        db, supervisor = _build(tmp_path, "restart-repair")
        # The decision is durable (that is the only way a delivery can
        # be pending), so the restart's snapshot contains it and the
        # rejoin cleanup may drop the entry.
        db.decisions.append("g1.1")
        db.crash_shard(1)
        supervisor.report_crash(1, db.shards[1], reason="test")
        supervisor.queue_decision_delivery("g1.1", [1])
        supervisor.tick()  # restart path drops the shard's pending entry
        assert supervisor.state_of(1) == SERVING
        assert supervisor.pending_decisions == {}
        db.close()

    def test_rejoin_keeps_decisions_newer_than_snapshot(self, tmp_path):
        """A decision fsync'd *after* a restart's snapshot was read must
        survive the rejoin cleanup: that restart's recovery never saw
        it, so only the repair loop's explicit delivery (to the new
        incarnation) can settle it."""
        db, supervisor = _build(tmp_path, "rejoin-fresh")
        db.crash_shard(1)
        supervisor.report_crash(1, db.shards[1], reason="test")

        original = supervisor._recover_handle

        def recover_then_decide(shard_id):
            handle_and_snapshot = original(shard_id)
            # Appended after the snapshot read: simulates a concurrent
            # coordinator landing a decision mid-recovery.
            db.decisions.append("g7.7")
            supervisor.queue_decision_delivery("g7.7", [1])
            return handle_and_snapshot

        supervisor._recover_handle = recover_then_decide
        supervisor._restart_pass()
        supervisor._recover_handle = original
        assert supervisor.state_of(1) == SERVING
        # Not dropped by the rejoin; the repair loop delivers it.
        assert supervisor.pending_decisions == {"g7.7": (1,)}
        supervisor.tick()
        assert supervisor.pending_decisions == {}
        db.close()

    def test_repair_backoff_defers_retry(self, tmp_path):
        db, supervisor = _build(tmp_path, "backoff")

        calls = []
        original = db.shards[0].call

        def failing(cmd, timeout=None):
            if cmd[0] == "decide":
                calls.append(cmd)
                raise RuntimeError("flaky transport")
            return original(cmd, timeout=timeout)

        db.shards[0].call = failing
        supervisor.queue_decision_delivery("g2.2", [0])
        supervisor._repair_decisions()
        assert len(calls) == 1
        # Non-crash failure: entry stays queued with a future retry time.
        assert supervisor.pending_decisions == {"g2.2": (0,)}
        supervisor._repair_decisions()  # inside backoff -> no new attempt
        assert len(calls) == 1
        db.shards[0].call = original
        time.sleep(0.05)
        supervisor._repair_decisions()
        assert supervisor.pending_decisions == {}
        db.close()


class TestIncarnationFence:
    """The commit decision must be fenced on participant incarnation: a
    participant restarted between its prepare and the decision resolved
    the branch against a decision-log snapshot that predates the
    decision, so committing anyway would ack a transaction whose branch
    is already rolled back (REVIEW: restart recovery racing a live
    coordinator)."""

    def test_restart_between_prepare_and_decision_aborts(self, tmp_path):
        db, supervisor = _build(tmp_path, "fence")
        original = db.shards[1].call

        def racing(cmd, timeout=None):
            result = original(cmd, timeout=timeout)
            if cmd[0] == "txn_prepare":
                # The participant dies right after voting yes and its
                # restart completes -- snapshot read, branch presumed
                # aborted -- before the coordinator reaches a decision.
                db.shards[1].call = original
                db.crash_shard(1)
                supervisor.report_crash(1, db.shards[1], reason="race")
                supervisor.tick()
            return result

        db.shards[1].call = racing
        with pytest.raises(TwoPhaseCommitError) as err:
            db.submit_txn(TRANSFER)
        # Presumed abort, not a phantom commit: nothing durable names
        # the gid and both branches rolled back.
        assert err.value.retryable
        assert not err.value.committed
        assert len(db.decisions) == 0
        assert supervisor.state_of(1) == SERVING
        assert _balances(db) == (100, 100)
        # The retry (new incarnation prepared the branch) commits.
        db.submit_txn(TRANSFER)
        assert _balances(db) == (70, 130)
        assert len(db.decisions) == 1
        db.close()

    def test_recovering_participant_fences_decision(self, tmp_path):
        db, supervisor = _build(tmp_path, "fence-recovering")
        original = db.shards[1].call

        def racing(cmd, timeout=None):
            result = original(cmd, timeout=timeout)
            if cmd[0] == "txn_prepare":
                # Crash detected but restart not yet run: the shard is
                # RECOVERING at decision time, which must also fence.
                db.shards[1].call = original
                db.crash_shard(1)
                supervisor.report_crash(1, db.shards[1], reason="race")
            return result

        db.shards[1].call = racing
        with pytest.raises(TwoPhaseCommitError) as err:
            db.submit_txn(TRANSFER)
        assert err.value.retryable
        assert len(db.decisions) == 0
        assert supervisor.heal(timeout_s=10.0)
        assert _balances(db) == (100, 100)
        db.close()


class TestSupervisedDrain:
    def test_drain_reports_lost_backlog(self, tmp_path):
        from repro.errors import PartialDrainError
        from repro.shard.shard import ShardCrashed

        db, supervisor = _build(tmp_path, "drain-loss")
        db.submit_txn_nowait([("query", "account", 0)])
        db.submit_txn_nowait([("query", "account", 1)])
        db.submit_txn_nowait([("query", "account", 1)])

        def dead_drain(timeout=None):
            raise ShardCrashed(1, "worker-death", 0)

        db.shards[1].drain = dead_drain
        with pytest.raises(PartialDrainError) as err:
            db.drain()
        # The surviving shard's answers arrive; the crashed shard's
        # backlog is named and counted, not silently dropped.
        assert err.value.retryable
        assert len(err.value.results) == 1
        assert err.value.lost == {1: 2}
        assert supervisor.state_of(1) == RECOVERING
        supervisor.tick()
        assert supervisor.state_of(1) == SERVING
        db.close()


class TestProcessMode:
    """The real thing: SIGKILLed and hung worker processes."""

    def _config(self) -> SupervisorConfig:
        return SupervisorConfig(
            heartbeat_timeout_s=0.5,
            call_timeout_s=1.0,
            prepare_timeout_s=1.0,
            restart_timeout_s=60.0,
        )

    def test_killed_worker_restarts_and_serves(self, tmp_path):
        db, supervisor = _build(
            tmp_path, "kill", mode="process", config=self._config()
        )
        try:
            db.submit_txn(TRANSFER)
            kill_worker(db, 1)
            with pytest.raises(ShardUnavailableError):
                db.submit_txn([("query", "account", 1)])
            assert supervisor.state_of(1) == RECOVERING
            # Survivor keeps serving while the victim restarts.
            assert db.submit_txn([("query", "account", 0)])[0]["balance"] == 70
            assert supervisor.heal(timeout_s=60.0)
            assert _balances(db) == (70, 130)
            assert supervisor.summary()["restarts"] == 1
        finally:
            supervisor.detach()
            db.close()

    def test_hung_worker_times_out_and_restarts(self, tmp_path):
        db, supervisor = _build(
            tmp_path, "hang", mode="process", config=self._config()
        )
        try:
            hang_worker(db, 1, seconds=3.0)
            began = time.monotonic()
            with pytest.raises(ShardUnavailableError):
                db.submit_txn([("query", "account", 1)])
            # Deadline, not the full hang: detection must not wait the
            # sleep out.
            assert time.monotonic() - began < 2.5
            assert supervisor.state_of(1) == RECOVERING
            assert supervisor.heal(timeout_s=60.0)
            assert _balances(db) == (100, 100)
        finally:
            supervisor.detach()
            db.close()

    def test_heartbeat_detects_hung_backlog(self, tmp_path):
        """A worker that hangs while a pipelined backlog is in flight
        must be caught by heartbeat alone: no later timed call touches
        the shard, so only the probe's backlog-progress watch can see
        that the backlog stopped shrinking (REVIEW: probe returned
        alive whenever _outstanding > 0)."""
        db, supervisor = _build(
            tmp_path, "hang-idle", mode="process", config=self._config()
        )
        try:
            hang_worker(db, 1, seconds=60.0)
            deadline = time.monotonic() + 20.0
            while (
                time.monotonic() < deadline
                and supervisor.summary()["restarts"] == 0
            ):
                supervisor.tick()
                time.sleep(0.05)
            assert supervisor.heartbeat_failures >= 1
            assert supervisor.summary()["restarts"] >= 1
            assert supervisor.heal(timeout_s=60.0)
            assert _balances(db) == (100, 100)
        finally:
            supervisor.detach()
            db.close()

    def test_timeout_poisons_pipe(self, tmp_path):
        sharded = ShardedConfig(
            dir=str(tmp_path / "poison"),
            n_shards=1,
            mode="process",
            branches=1,
            scheme="data_codeword",
        )
        db = ShardedDatabase.create(
            sharded, [("account", ACCOUNT_SCHEMA, 32, "aid")]
        )
        try:
            db.shards[0].call_nowait(("hang", 2.0))
            with pytest.raises(ShardTimeoutError) as err:
                db.shards[0].call(("ping",), timeout=0.2)
            assert err.value.retryable
            assert not db.shards[0].is_alive()  # poisoned
        finally:
            db.crash()

    def test_scheduled_ticks_heal_without_manual_intervention(self, tmp_path):
        db, supervisor = _build(
            tmp_path, "auto", mode="process", config=self._config()
        )
        supervisor.start()
        try:
            kill_worker(db, 0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    supervisor.summary()["restarts"] >= 1
                    and supervisor.state_of(0) == SERVING
                ):
                    break
                time.sleep(0.05)
            assert supervisor.state_of(0) == SERVING
            assert _balances(db) == (100, 100)
        finally:
            supervisor.detach()
            db.close()
