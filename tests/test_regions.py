"""Codeword table: geometry, incremental maintenance, audits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regions import CodewordTable
from repro.errors import ConfigError
from repro.mem.memory import MemoryImage


def make_table(region_size=64, size=4096):
    memory = MemoryImage(page_size=4096)
    memory.add_segment("data", size)
    return memory, CodewordTable(memory, region_size)


class TestGeometry:
    def test_region_count_covers_memory(self):
        _, table = make_table(64, 4096)
        assert table.region_count == 64

    def test_region_count_rounds_up(self):
        memory = MemoryImage(page_size=4096)
        memory.add_segment("data", 4096)
        table = CodewordTable(memory, 4096 * 3)
        assert table.region_count == 1

    def test_regions_spanning(self):
        _, table = make_table(64)
        assert list(table.regions_spanning(60, 8)) == [0, 1]
        assert list(table.regions_spanning(0, 64)) == [0]
        assert list(table.regions_spanning(64, 1)) == [1]

    def test_zero_length_spans_one_region(self):
        _, table = make_table(64)
        assert list(table.regions_spanning(100, 0)) == [1]

    def test_region_bounds_clamped_to_memory(self):
        memory = MemoryImage(page_size=4096)
        memory.add_segment("data", 4096)
        table = CodewordTable(memory, 8192)
        start, length = table.region_bounds(0)
        assert (start, length) == (0, 4096)

    def test_bad_region_size_rejected(self):
        memory = MemoryImage(page_size=4096)
        memory.add_segment("data", 4096)
        with pytest.raises(ConfigError):
            CodewordTable(memory, 6)
        with pytest.raises(ConfigError):
            CodewordTable(memory, 30)

    def test_space_overhead(self):
        _, table = make_table(64)
        assert table.space_overhead == pytest.approx(0.0625)


class TestMaintenance:
    def test_fresh_zero_memory_matches_zero_codewords(self):
        _, table = make_table()
        assert table.matches(0)

    def test_apply_update_keeps_consistency(self):
        memory, table = make_table()
        old = memory.read(10, 8)
        memory.write(10, b"ABCDEFGH")
        table.apply_update(10, old, b"ABCDEFGH")
        assert all(table.matches(r) for r in range(table.region_count))

    def test_update_spanning_regions(self):
        memory, table = make_table(64)
        old = memory.read(60, 12)
        new = b"x" * 12
        memory.write(60, new)
        table.apply_update(60, old, new)
        assert table.matches(0)
        assert table.matches(1)

    def test_unaligned_update(self):
        memory, table = make_table()
        old = memory.read(3, 5)
        memory.write(3, b"abcde")
        table.apply_update(3, old, b"abcde")
        assert table.matches(0)

    def test_mismatched_image_lengths_rejected(self):
        _, table = make_table()
        with pytest.raises(ConfigError):
            table.apply_update(0, b"ab", b"abc")

    def test_wild_write_breaks_match(self):
        memory, table = make_table()
        memory.poke(20, b"\xff\xff")
        assert not table.matches(0)
        assert table.matches(1)

    def test_rebuild_region_restores_match(self):
        memory, table = make_table()
        memory.poke(20, b"\xff\xff")
        table.rebuild_region(0)
        assert table.matches(0)

    def test_words_folded_counts_both_images(self):
        _, table = make_table()
        words = table.apply_update(0, b"\x00" * 8, b"\x01" * 8)
        assert words == 4  # 2 words old + 2 words new

    def test_compute_deltas_roundtrip(self):
        memory, table = make_table(64)
        old = memory.read(62, 8)
        new = b"ZZZZZZZZ"
        deltas = table.compute_deltas(62, old, new)
        assert [d[0] for d in deltas] == [0, 1]
        memory.write(62, new)
        for region_id, delta, _words in deltas:
            table.apply_delta(region_id, delta)
        assert table.matches(0) and table.matches(1)

    @settings(max_examples=50)
    @given(
        st.integers(min_value=0, max_value=4000),
        st.binary(min_size=1, max_size=200),
        st.integers(min_value=3, max_value=9),
    )
    def test_incremental_equals_recompute(self, address, patch, region_pow):
        """Property: incremental maintenance == recompute from scratch."""
        region_size = 2**region_pow
        memory, table = make_table(region_size)
        if address + len(patch) > memory.size:
            address = memory.size - len(patch)
        # Start from interesting content, not zeros.
        memory.write(0, bytes((i * 37) % 256 for i in range(memory.size)))
        table.rebuild_all()
        old = memory.read(address, len(patch))
        memory.write(address, patch)
        table.apply_update(address, old, patch)
        assert table.scan_mismatches() == []


class TestXorBlindSpot:
    """XOR codewords detect corruption only 'with high probability'
    (Section 3): a wild write whose old and new images fold to the same
    word escapes detection.  This documents the inherent blind spot."""

    def test_self_canceling_wild_write_evades_detection(self):
        memory, table = make_table(64)
        # Two identical changed words XOR-cancel: fold delta is zero.
        memory.poke(0, b"\xff\xff\xff\xff\xff\xff\xff\xff")
        assert table.matches(0)

    def test_swapping_two_words_evades_detection(self):
        memory, table = make_table(64)
        memory.write(0, b"AAAABBBB")
        table.rebuild_all()
        memory.poke(0, b"BBBBAAAA")  # same multiset of words
        assert table.matches(0)

    def test_single_word_change_always_detected(self):
        memory, table = make_table(64)
        memory.poke(0, b"\xff\xff\xff\xff")
        assert not table.matches(0)


class TestAuditScan:
    def test_scan_finds_only_corrupt_regions(self):
        memory, table = make_table(64)
        memory.poke(130, b"\x01")
        memory.poke(300, b"\x02")
        assert table.scan_mismatches() == [2, 4]

    def test_scan_subset(self):
        memory, table = make_table(64)
        memory.poke(130, b"\x01")
        assert table.scan_mismatches(range(0, 2)) == []
        assert table.scan_mismatches(range(2, 3)) == [2]
