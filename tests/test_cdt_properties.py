"""Property-based verification of the CorruptDataTable interval set."""

from hypothesis import given, strategies as st

from repro.recovery.restart import CorruptDataTable

interval = st.tuples(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=60),
)


class NaiveModel:
    """Reference implementation: an explicit byte set."""

    def __init__(self) -> None:
        self.bytes: set[int] = set()

    def add(self, start: int, length: int) -> None:
        self.bytes.update(range(start, start + length))

    def overlaps(self, start: int, length: int) -> bool:
        return any(b in self.bytes for b in range(start, start + length))


class TestAgainstNaiveModel:
    @given(adds=st.lists(interval, max_size=30), probes=st.lists(interval, max_size=30))
    def test_overlap_queries_match_byte_set(self, adds, probes):
        cdt = CorruptDataTable()
        model = NaiveModel()
        for start, length in adds:
            cdt.add(start, length)
            model.add(start, length)
        for start, length in probes:
            assert cdt.overlaps(start, length) == model.overlaps(start, length), (
                start,
                length,
            )

    @given(adds=st.lists(interval, min_size=1, max_size=30))
    def test_ranges_are_disjoint_sorted_and_cover_exactly(self, adds):
        cdt = CorruptDataTable()
        model = NaiveModel()
        for start, length in adds:
            cdt.add(start, length)
            model.add(start, length)
        ranges = cdt.ranges
        # Sorted, disjoint, non-adjacent (adjacent ranges must merge).
        for (s1, l1), (s2, _l2) in zip(ranges, ranges[1:]):
            assert s1 + l1 < s2
        covered = set()
        for start, length in ranges:
            covered.update(range(start, start + length))
        assert covered == model.bytes

    @given(adds=st.lists(interval, max_size=30))
    def test_add_is_idempotent(self, adds):
        cdt = CorruptDataTable()
        for start, length in adds:
            cdt.add(start, length)
        snapshot = cdt.ranges
        for start, length in adds:
            cdt.add(start, length)
        assert cdt.ranges == snapshot
