"""Edge cases and error paths across the stack."""

import pytest

from repro import Database
from repro.errors import ConfigError, TransactionError
from repro.wal.records import LogicalUndo

from tests.conftest import insert_accounts


class TestTransactionStateMachine:
    def test_operations_on_committed_txn_rejected(self, db):
        slots = insert_accounts(db, 1)
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionError):
            db.table("acct").read(txn, slots[0])
        with pytest.raises(TransactionError):
            db.table("acct").update(txn, slots[0], {"balance": 1})

    def test_abort_of_committed_txn_rejected(self, db):
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionError):
            db.abort(txn)

    def test_commit_operation_without_open_op_rejected(self, db):
        txn = db.begin()
        with pytest.raises(TransactionError):
            db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.abort(txn)

    def test_commit_operation_with_open_window_rejected(self, db):
        slots = insert_accounts(db, 1)
        address = db.table("acct").record_address(slots[0])
        txn = db.begin()
        db.manager.begin_operation(txn, "w")
        db.manager.begin_update(txn, address, 4)
        with pytest.raises(TransactionError):
            db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.manager.end_update(txn)
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)

    def test_unknown_logical_undo_rejected(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.commit_operation(txn, LogicalUndo("undo_frobnicate", ("t", 1)))
        with pytest.raises(TransactionError):
            db.abort(txn)  # executing the unknown undo fails loudly

    def test_missing_undo_executor_rejected(self, db):
        db.manager.undo_executor = None
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.commit_operation(txn, LogicalUndo("undo_insert", ("acct", 0)))
        with pytest.raises(TransactionError, match="no undo executor"):
            db.abort(txn)


class TestGracefulShutdown:
    def test_close_then_recover(self, db):
        slots = insert_accounts(db, 2)
        db.close()
        db2, report = Database.recover(db.config)
        assert report.mode == "normal"
        txn = db2.begin()
        assert db2.table("acct").read(txn, slots[0])["balance"] == 100
        db2.commit(txn)
        db2.close()

    def test_double_close_is_safe(self, db):
        db.close()
        db.close()


class TestWriteFields:
    def test_write_fields_roundtrip_and_undo(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        offset, size = table.schema.field_range("balance")
        txn = db.begin()
        table.write_fields(txn, slots[0], [(offset, (777).to_bytes(8, "little"))])
        assert table.read(txn, slots[0])["balance"] == 777
        db.abort(txn)
        txn = db.begin()
        assert table.read(txn, slots[0])["balance"] == 100
        db.commit(txn)


class TestSchemaValidationInTables:
    def test_key_field_must_be_integer(self, tmp_path):
        from repro import DBConfig, Field, FieldType, Schema

        schema = Schema([Field("name", FieldType.CHAR, 8)])
        db = Database(DBConfig(dir=str(tmp_path / "d")))
        db.create_table("t", schema, 10, key_field="name")
        with pytest.raises(ConfigError, match="integer"):
            db.start()


class TestAuditEveryScheme:
    @pytest.mark.parametrize(
        "scheme", ["baseline", "hardware", "data_cw", "precheck", "deferred"]
    )
    def test_audit_runs_under_every_scheme(self, db_factory, scheme):
        db = db_factory(scheme=scheme)
        insert_accounts(db, 2)
        report = db.audit()
        assert report.clean
        assert report.audit_id >= 1


class TestStatsAndRepr:
    def test_reprs_do_not_crash(self, db):
        insert_accounts(db, 1)
        txn = db.begin()
        repr(txn)
        repr(db.scheme)
        repr(db.memory.dirty_pages)
        repr(db.clock)
        repr(db.table("acct").schema)
        db.commit(txn)
