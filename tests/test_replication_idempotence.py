"""Replica crash idempotence: crash anywhere, resync, same promoted image.

The replica's durable state (bootstrap checkpoint + ingested frames) is
the truth of the replication session: a crash at *any* replica or
promotion crash point, followed by reopen + shipper resync, must
converge to the same byte-equivalent image and the same certified
failover as an uninterrupted run.  The retransmitted overlap is dropped
by LSN idempotence, so nothing double-applies.

Mirrors ``tests/test_recovery_idempotence.py`` for the two-node story.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CrashPointRegistry, Database, DBConfig
from repro.errors import SimulatedCrash
from repro.faults.crashpoints import REPLICA_CRASH_POINTS
from repro.recovery.archive import create_archive
from repro.replication import LogShipper, Replica, ShipTransport

from tests.conftest import ACCT_SCHEMA, insert_accounts

ACCOUNTS = 6
OPS = 10


def _config(path) -> DBConfig:
    return DBConfig(
        dir=str(path),
        scheme="data_cw+cw_read_logging",
        scheme_params={"region_size": 256},
        quarantine=True,
        audit_mode="incremental",
        full_sweep_every=1000,
    )


class _Session:
    """One primary + standby pair with crash-tolerant pump/promote."""

    def __init__(self, base, registry: CrashPointRegistry) -> None:
        self.registry = registry
        self.primary = Database(_config(base / "primary"))
        self.primary.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        self.primary.start()
        self.slots = insert_accounts(self.primary, ACCOUNTS)
        self.committed = {i: 100 for i in range(ACCOUNTS)}
        create_archive(self.primary, str(base / "archive"))
        self.replica_config = _config(base / "replica")
        self.replica = Replica.bootstrap(
            self.replica_config, str(base / "archive"), crashpoints=registry
        )
        self.shipper = LogShipper(
            self.primary, ShipTransport(), self.replica, window=4, batch_records=8
        )
        self.crashes: list[str] = []

    def commit(self, acct: int, balance: int) -> None:
        table = self.primary.table("acct")
        txn = self.primary.begin()
        table.update(txn, self.slots[acct], {"balance": balance})
        self.primary.commit(txn)
        self.committed[acct] = balance

    def pump(self) -> None:
        try:
            self.shipper.pump()
        except SimulatedCrash as exc:
            self.crashes.append(exc.point)
            self._reopen()

    def _reopen(self) -> None:
        self.replica.crash()
        self.replica = Replica.reopen(
            self.replica_config, crashpoints=self.registry
        )
        self.shipper.resync(self.replica)

    def drain(self) -> None:
        for _ in range(200):
            if self.shipper.caught_up:
                return
            self.pump()
        raise AssertionError("shipper did not catch up in 200 pumps")

    def promote(self, primary_end: int):
        for _attempt in range(3):
            try:
                return self.replica.promote(primary_end_lsn=primary_end)
            except SimulatedCrash as exc:
                self.crashes.append(exc.point)
                self.replica.crash()
                self.replica = Replica.reopen(
                    self.replica_config, crashpoints=self.registry
                )
        raise AssertionError("promotion did not converge in 3 attempts")

    def close(self) -> None:
        for closer in (self.replica.close, self.primary.close):
            try:
                closer()
            except Exception:
                pass


class TestReplicaIdempotence:
    @given(point=st.sampled_from(REPLICA_CRASH_POINTS))
    @settings(max_examples=2 * len(REPLICA_CRASH_POINTS), deadline=None)
    def test_crash_at_any_point_then_resync_converges(
        self, point, tmp_path_factory
    ):
        base = tmp_path_factory.mktemp("repl-idem")
        session = _Session(base, CrashPointRegistry())
        try:
            for op in range(OPS):
                if op == 2:
                    # Fires on the next matching pump (replica points) or
                    # during failover (promotion points); one-shot.
                    session.registry.arm(point)
                session.commit(op % ACCOUNTS, 9000 + op)
                session.pump()
                if op % 4 == 3:
                    assert session.primary.checkpoint().certified
            session.drain()

            reference = np.array(
                session.primary.pipeline.maintainer.region_digests(), copy=True
            )
            primary_end = session.primary.system_log.end_of_stable_lsn
            session.primary.crash()

            report = session.promote(primary_end)
            assert session.crashes == [point]
            assert report.certified
            assert report.audit_report.clean
            # Fully drained before death: nothing in the lost window, so
            # the promoted image is byte-equivalent to the primary's and
            # every committed value survived exactly.
            assert report.lost_commit_window == 0
            assert np.array_equal(
                session.replica.db.pipeline.maintainer.region_digests(),
                reference,
            )
            db = session.replica.db
            table = db.table("acct")
            for acct, slot in session.slots.items():
                txn = db.begin()
                try:
                    assert (
                        table.read(txn, slot)["balance"]
                        == session.committed[acct]
                    )
                finally:
                    db.abort(txn)
        finally:
            session.close()

    def test_double_crash_still_converges(self, tmp_path):
        """A replay crash *and* a promotion crash in one session do not
        compound: the third incarnation still certifies the same image."""
        session = _Session(tmp_path, CrashPointRegistry())
        try:
            session.registry.arm("replica.after_ingest")
            for op in range(OPS):
                session.commit(op % ACCOUNTS, 9100 + op)
                session.pump()
                if op % 4 == 3:
                    assert session.primary.checkpoint().certified
            session.drain()
            assert session.crashes == ["replica.after_ingest"]

            reference = np.array(
                session.primary.pipeline.maintainer.region_digests(), copy=True
            )
            primary_end = session.primary.system_log.end_of_stable_lsn
            session.primary.crash()

            session.registry.arm("promote.pre_sweep")
            report = session.promote(primary_end)
            assert session.crashes == [
                "replica.after_ingest",
                "promote.pre_sweep",
            ]
            assert report.certified
            assert report.lost_commit_window == 0
            assert np.array_equal(
                session.replica.db.pipeline.maintainer.region_digests(),
                reference,
            )
        finally:
            session.close()
