"""Database facade: lifecycle, catalog, configuration errors."""

import os

import pytest

from repro import Database, DBConfig, Field, FieldType, Schema
from repro.errors import ConfigError, TransactionError

from tests.conftest import ACCT_SCHEMA, insert_accounts


class TestLifecycle:
    def test_create_table_after_start_rejected(self, db):
        with pytest.raises(ConfigError):
            db.create_table("late", ACCT_SCHEMA, 10, key_field="id")

    def test_duplicate_table_rejected(self, tmp_path):
        db = Database(DBConfig(dir=str(tmp_path / "d")))
        db.create_table("t", ACCT_SCHEMA, 10, key_field="id")
        with pytest.raises(ConfigError):
            db.create_table("t", ACCT_SCHEMA, 10, key_field="id")

    def test_indexed_table_needs_key(self, tmp_path):
        db = Database(DBConfig(dir=str(tmp_path / "d")))
        with pytest.raises(ConfigError):
            db.create_table("t", ACCT_SCHEMA, 10)

    def test_unindexed_table_allowed(self, tmp_path):
        db = Database(DBConfig(dir=str(tmp_path / "d")))
        db.create_table("t", ACCT_SCHEMA, 10, indexed=False)
        db.start()
        txn = db.begin()
        slot = db.table("t").insert(txn, {"id": 1})
        assert db.table("t").read(txn, slot)["id"] == 1
        with pytest.raises(ConfigError):
            db.table("t").lookup(txn, 1)
        db.commit(txn)
        db.close()

    def test_unknown_table_rejected(self, db):
        with pytest.raises(ConfigError):
            db.table("ghost")

    def test_double_start_rejected(self, db):
        with pytest.raises(ConfigError):
            db.start()

    def test_ops_after_crash_rejected(self, db):
        db.crash()
        with pytest.raises(TransactionError):
            db.begin()

    def test_start_writes_catalog_and_initial_checkpoint(self, db):
        assert os.path.exists(db.path("catalog.json"))
        assert os.path.exists(db.path("cur_ckpt"))
        assert os.path.exists(db.path("ckpt_A.img"))


class TestControlDataSeparation:
    """Dali layout: allocation info never shares a page with tuple data."""

    def test_segment_kinds(self, db):
        kinds = {seg.name: seg.kind for seg in db.memory.segments}
        assert kinds["acct.data"] == "data"
        assert kinds["acct.ctl"] == "control"

    def test_updates_touch_data_and_control_pages(self, db):
        table = db.table("acct")
        txn = db.begin()
        table.insert(txn, {"id": 1, "balance": 1})
        db.commit(txn)
        data_seg = db.memory.segment("acct.data")
        ctl_seg = db.memory.segment("acct.ctl")
        dirty = db.memory.dirty_pages.pending_for("A")
        page = db.memory.page_size
        assert any(data_seg.base // page <= p < data_seg.end // page for p in dirty)
        assert any(ctl_seg.base // page <= p < ctl_seg.end // page for p in dirty)


class TestMultipleTables:
    def test_two_tables_isolated(self, tmp_path):
        other = Schema([Field("k", FieldType.INT64), Field("v", FieldType.CHAR, 8)])
        db = Database(DBConfig(dir=str(tmp_path / "d")))
        db.create_table("a", ACCT_SCHEMA, 50, key_field="id")
        db.create_table("b", other, 50, key_field="k")
        db.start()
        txn = db.begin()
        db.table("a").insert(txn, {"id": 1, "balance": 10})
        db.table("b").insert(txn, {"k": 1, "v": "one"})
        assert db.table("a").read(txn, 0)["balance"] == 10
        assert db.table("b").read(txn, 0)["v"] == b"one"
        db.commit(txn)
        db.close()


class TestStats:
    def test_read_write_counters(self, db):
        slots = insert_accounts(db, 2)
        txn = db.begin()
        db.table("acct").read(txn, slots[0])
        db.commit(txn)
        assert db.stats["writes"] >= 2
        assert db.stats["reads"] >= 1

    def test_history_recording_optional(self, db_factory):
        db = db_factory(record_history=False)
        assert db.history is None
        insert_accounts(db, 1)  # must not crash without a recorder


class TestRecoverErrors:
    def test_recover_without_catalog_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            Database.recover(DBConfig(dir=str(tmp_path / "empty")))

    def test_recover_page_size_mismatch_rejected(self, db):
        db.crash()
        bad = DBConfig(dir=db.config.dir, page_size=4096)
        with pytest.raises(ConfigError):
            Database.recover(bad)
