"""In-image hash index: chains, free list, capacity, persistence of state."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfSpaceError
from repro.mem.memory import MemoryImage
from repro.storage.index import HashIndex


class RawAccessor:
    def __init__(self, memory: MemoryImage) -> None:
        self.memory = memory

    def read(self, address: int, length: int) -> bytes:
        return self.memory.read(address, length)

    def update(self, address: int, new_bytes: bytes) -> None:
        self.memory.write(address, new_bytes)


def make_index(buckets=8, capacity=64):
    memory = MemoryImage(page_size=4096)
    seg = memory.add_segment("idx", HashIndex.size_for(buckets, capacity))
    index = HashIndex(seg.base, buckets, capacity)
    ctx = RawAccessor(memory)
    index.format(ctx)
    return index, ctx


class TestBasics:
    def test_lookup_missing_returns_none(self):
        index, ctx = make_index()
        assert index.lookup(ctx, 42) is None

    def test_insert_lookup(self):
        index, ctx = make_index()
        index.insert(ctx, 42, 7)
        assert index.lookup(ctx, 42) == 7

    def test_many_keys_force_collisions(self):
        index, ctx = make_index(buckets=4, capacity=64)
        for key in range(50):
            index.insert(ctx, key, key * 2)
        for key in range(50):
            assert index.lookup(ctx, key) == key * 2

    def test_negative_keys(self):
        index, ctx = make_index()
        index.insert(ctx, -12345, 3)
        assert index.lookup(ctx, -12345) == 3

    def test_delete(self):
        index, ctx = make_index()
        index.insert(ctx, 1, 10)
        index.insert(ctx, 2, 20)
        assert index.delete(ctx, 1)
        assert index.lookup(ctx, 1) is None
        assert index.lookup(ctx, 2) == 20

    def test_delete_missing_returns_false(self):
        index, ctx = make_index()
        assert not index.delete(ctx, 99)

    def test_delete_middle_of_chain(self):
        index, ctx = make_index(buckets=1)  # everything chains in bucket 0
        for key in (1, 2, 3):
            index.insert(ctx, key, key)
        assert index.delete(ctx, 2)
        assert index.lookup(ctx, 1) == 1
        assert index.lookup(ctx, 2) is None
        assert index.lookup(ctx, 3) == 3


class TestFreeList:
    def test_entries_reused_after_delete(self):
        index, ctx = make_index(capacity=2)
        index.insert(ctx, 1, 1)
        index.insert(ctx, 2, 2)
        index.delete(ctx, 1)
        index.insert(ctx, 3, 3)  # must reuse entry 0
        assert index.lookup(ctx, 3) == 3

    def test_capacity_exhaustion(self):
        index, ctx = make_index(capacity=4)
        for key in range(4):
            index.insert(ctx, key, key)
        with pytest.raises(OutOfSpaceError):
            index.insert(ctx, 5, 5)

    def test_delete_then_fill_to_capacity(self):
        index, ctx = make_index(capacity=4)
        for key in range(4):
            index.insert(ctx, key, key)
        for key in range(4):
            index.delete(ctx, key)
        for key in range(10, 14):
            index.insert(ctx, key, key)
        for key in range(10, 14):
            assert index.lookup(ctx, key) == key


class TestProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=80,
        )
    )
    def test_matches_dict_model(self, operations):
        """The index behaves like a Python dict under insert/delete."""
        index, ctx = make_index(buckets=4, capacity=200)
        model: dict[int, int] = {}
        for op, key in operations:
            if op == "insert":
                if key in model:
                    continue  # the index is a primary-key map: no dup keys
                model[key] = abs(key)
                index.insert(ctx, key, abs(key))
            else:
                existed = index.delete(ctx, key)
                assert existed == (key in model)
                model.pop(key, None)
        for key in range(-50, 51):
            assert index.lookup(ctx, key) == model.get(key)
