"""The runtime scheduler (``repro.runtime``).

Two families of guarantees:

* scheduler mechanics -- tick registration/dispatch, background handles
  in both modes, drain ordering, mode resolution;
* refactor purity -- a database whose deferred work runs through the
  deterministic scheduler is *meter-identical* to the pre-scheduler
  inline code (kept alive as the ``scheduler=None`` fallback inside
  ``TransactionManager``), property-tested over random workloads and
  group-commit windows.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DBConfig
from repro.errors import ConfigError
from repro.runtime.scheduler import (
    DETERMINISTIC,
    THREADED,
    InlineHandle,
    Scheduler,
    ThreadHandle,
    resolve_scheduler_mode,
)

from tests.conftest import ACCT_SCHEMA, insert_accounts


def make_db(base, name, **config_kwargs) -> Database:
    config_kwargs.setdefault("scheme", "baseline")
    config = DBConfig(dir=str(base / name), **config_kwargs)
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
    db.start()
    return db


class TestSchedulerMechanics:
    def test_tick_runs_subscribed_tasks_in_registration_order(self):
        sched = Scheduler(DETERMINISTIC)
        ran = []
        sched.register_tick("a", ("commit",), lambda e: ran.append(("a", e)))
        sched.register_tick("b", ("commit", "checkpoint"), lambda e: ran.append(("b", e)))
        sched.register_tick("c", ("checkpoint",), lambda e: ran.append(("c", e)))
        sched.tick("commit")
        sched.tick("checkpoint")
        assert ran == [("a", "commit"), ("b", "commit"), ("b", "checkpoint"), ("c", "checkpoint")]
        assert sched.tick_count == 2

    def test_duplicate_or_unknown_tick_rejected(self):
        sched = Scheduler(DETERMINISTIC)
        sched.register_tick("t", ("commit",), lambda e: None)
        with pytest.raises(ConfigError):
            sched.register_tick("t", ("commit",), lambda e: None)
        with pytest.raises(ConfigError):
            sched.register_tick("u", ("no-such-event",), lambda e: None)

    def test_deterministic_spawn_defers_until_result(self):
        sched = Scheduler(DETERMINISTIC)
        ran = []
        handle = sched.spawn("work", lambda: ran.append(1) or 41 + 1)
        assert isinstance(handle, InlineHandle)
        assert ran == []  # nothing ran yet
        assert handle.result() == 42
        assert handle.result() == 42  # idempotent, runs once
        assert ran == [1]

    def test_threaded_spawn_runs_on_worker(self):
        sched = Scheduler(THREADED)
        handle = sched.spawn("work", lambda: 7)
        assert isinstance(handle, ThreadHandle)
        assert handle.result() == 7
        sched.shutdown()

    def test_deterministic_abandon_never_runs_the_work(self):
        sched = Scheduler(DETERMINISTIC)
        ran = []
        handle = sched.spawn("work", lambda: ran.append(1))
        handle.abandon()
        assert ran == []

    def test_duplicate_live_name_rejected(self):
        sched = Scheduler(DETERMINISTIC)
        sched.spawn("work", lambda: 1)
        with pytest.raises(ConfigError):
            sched.spawn("work", lambda: 2)

    def test_drain_runs_steps_in_order_and_settles_live_work(self):
        sched = Scheduler(DETERMINISTIC)
        ran = []
        sched.add_drain_step("first", on_close=lambda: ran.append("first"))
        sched.add_drain_step(
            "second",
            on_close=lambda: ran.append("second.close"),
            on_crash=lambda: ran.append("second.crash"),
        )
        leftover = sched.spawn("leftover", lambda: ran.append("never"))
        assert sched.drain() == ["first", "second"]
        assert ran == ["first", "second.close"]
        assert leftover.done  # abandoned, not run
        assert sched.live_background == ()
        assert sched.drain(crash=True) == ["second"]
        assert ran[-1] == "second.crash"

    def test_mode_resolution(self):
        assert resolve_scheduler_mode("auto", background_sweeps=False) == DETERMINISTIC
        assert resolve_scheduler_mode("auto", background_sweeps=True) == THREADED
        assert resolve_scheduler_mode("threaded", False) == THREADED
        assert resolve_scheduler_mode("deterministic", True) == DETERMINISTIC
        with pytest.raises(ConfigError):
            resolve_scheduler_mode("bogus", False)
        with pytest.raises(ConfigError):
            Scheduler("bogus")


class TestDatabaseWiring:
    def test_database_registers_runtime_tasks(self, tmp_path):
        db = make_db(tmp_path, "wiring")
        rows = {(info.name, info.kind) for info in db.scheduler.tasks()}
        assert ("group_commit.flush", "tick") in rows
        assert ("audit.certify_join", "tick") in rows
        assert ("group_commit.flush", "drain") in rows
        assert ("audit.sweeps", "drain") in rows
        drain_names = [i.name for i in db.scheduler.tasks() if i.kind == "drain"]
        assert drain_names == ["group_commit.flush", "audit.sweeps"]
        db.close()

    def test_auto_mode_maps_to_modes(self, tmp_path):
        plain = make_db(tmp_path, "plain")
        assert plain.scheduler.mode == DETERMINISTIC
        sweeping = make_db(
            tmp_path, "sweeping", audit_mode="incremental", background_sweeps=True
        )
        assert sweeping.scheduler.mode == THREADED
        plain.close()
        sweeping.close()

    def test_commit_fires_the_commit_tick(self, tmp_path):
        db = make_db(tmp_path, "ticks")
        before = db.scheduler.tick_count
        insert_accounts(db, 2)
        assert db.scheduler.tick_count == before + 1  # one commit
        db.close()

    def test_deterministic_background_sweep_is_deferred_inline(self, tmp_path):
        """Explicit deterministic mode + background_sweeps: the fold is an
        InlineHandle that runs at the certification join -- same verdict,
        no threads."""
        db = make_db(
            tmp_path,
            "detsweep",
            scheme="data_codeword",
            audit_mode="incremental",
            full_sweep_every=2,
            background_sweeps=True,
            scheduler_mode="deterministic",
        )
        insert_accounts(db, 4)
        for _ in range(2):
            db.audit()  # second call hits the cadence -> sweep launched
        assert db.auditor._sweep is not None
        assert isinstance(db.auditor._sweep._handle, InlineHandle)
        assert not db.auditor._sweep.done  # deferred, not yet run
        report = db.auditor.join_background_sweep()
        assert report is not None and report.clean
        db.close()


def run_workload(db: Database, deposits: list[int], abort_mask: int = 0) -> None:
    table = db.table("acct")
    for i, amount in enumerate(deposits):
        txn = db.begin()
        table.update(txn, i % 3, {"balance": 100 + amount})
        if abort_mask & (1 << i):
            db.abort(txn)
        else:
            db.commit(txn)


class TestMeterIdentity:
    """Deterministic scheduler vs the pre-refactor inline fallback."""

    @given(
        deposits=st.lists(st.integers(0, 1000), min_size=1, max_size=10),
        abort_mask=st.integers(0, 1023),
        group=st.sampled_from([1, 3, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_scheduled_commit_path_is_meter_identical(
        self, deposits, abort_mask, group, tmp_path_factory
    ):
        base = tmp_path_factory.mktemp("meterid")
        scheduled = make_db(base, "scheduled", group_commit_size=group)
        legacy = make_db(base, "legacy", group_commit_size=group)
        # Sever the legacy manager from its scheduler: commit() falls back
        # to the historical inline group-commit flush -- the exact
        # pre-refactor code path.
        legacy.manager.scheduler = None
        for db in (scheduled, legacy):
            insert_accounts(db, 3)
        marks = {
            id(scheduled): scheduled.meter.snapshot(),
            id(legacy): legacy.meter.snapshot(),
        }

        def delta(db):
            mark = marks[id(db)]
            return {
                event: (count - mark.get(event, (0, 0))[0], ns - mark.get(event, (0, 0))[1])
                for event, (count, ns) in db.meter.snapshot().items()
                if (count, ns) != mark.get(event, (0, 0))
            }

        run_workload(scheduled, deposits, abort_mask)
        run_workload(legacy, deposits, abort_mask)
        assert delta(scheduled) == delta(legacy)
        scheduled.close()
        legacy.close()

    @given(deposits=st.lists(st.integers(0, 500), min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_tick_is_meter_identical(self, deposits, tmp_path_factory):
        base = tmp_path_factory.mktemp("ckid")
        scheduled = make_db(base, "scheduled", scheme="data_codeword")
        legacy = make_db(base, "legacy", scheme="data_codeword")
        legacy.manager.scheduler = None
        for db in (scheduled, legacy):
            insert_accounts(db, 3)
        marks = {
            id(scheduled): scheduled.meter.snapshot(),
            id(legacy): legacy.meter.snapshot(),
        }

        def delta(db):
            mark = marks[id(db)]
            return {
                event: (count - mark.get(event, (0, 0))[0], ns - mark.get(event, (0, 0))[1])
                for event, (count, ns) in db.meter.snapshot().items()
                if (count, ns) != mark.get(event, (0, 0))
            }

        run_workload(scheduled, deposits)
        run_workload(legacy, deposits)
        assert scheduled.checkpoint().certified
        assert legacy.checkpoint().certified
        assert delta(scheduled) == delta(legacy)
        scheduled.close()
        legacy.close()
