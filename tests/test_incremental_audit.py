"""Incremental (round-robin) auditing."""

import pytest

from repro import FaultInjector

from tests.conftest import insert_accounts


@pytest.fixture
def adb(db_factory):
    # Small regions so the table has plenty of regions to sweep.
    return db_factory(scheme="data_cw", region_size=512)


def region_count(db) -> int:
    return db.scheme.codeword_table.region_count


class TestSweepMechanics:
    def test_sweep_covers_all_regions(self, adb):
        insert_accounts(adb, 5)
        total = region_count(adb)
        checked = 0
        while True:
            report = adb.auditor.run_incremental(batch=7)
            checked += report.regions_checked
            if adb.auditor._cursor == 0:  # sweep wrapped
                break
        assert checked == total

    def test_audit_sn_advances_only_on_full_clean_sweep(self, adb):
        insert_accounts(adb, 5)
        before = adb.auditor.last_clean_audit_lsn
        sweep_start = adb.system_log.next_lsn
        total = region_count(adb)
        batch = max(1, total // 3)
        while adb.auditor.run_incremental(batch) and adb.auditor._cursor != 0:
            assert adb.auditor.last_clean_audit_lsn == before  # mid-sweep
        assert adb.auditor.last_clean_audit_lsn >= sweep_start

    def test_audit_sn_is_sweep_start_not_end(self, adb):
        """Conservative: corruption during the sweep might postdate only
        the sweep's start, so Audit_SN is the start LSN."""
        insert_accounts(adb, 5)
        sweep_start = adb.system_log.next_lsn
        total = region_count(adb)
        # interleave work between batches
        table = adb.table("acct")
        batch = max(1, total // 4 + 1)
        done = False
        while not done:
            adb.auditor.run_incremental(batch)
            done = adb.auditor._cursor == 0
            txn = adb.begin()
            table.update(txn, 0, {"balance": lambda b: b + 1})
            adb.commit(txn)
        assert adb.auditor.last_clean_audit_lsn >= sweep_start
        assert adb.auditor.last_clean_audit_lsn < adb.system_log.next_lsn - 1

    def test_bad_batch_rejected(self, adb):
        with pytest.raises(ValueError):
            adb.auditor.run_incremental(0)


class TestIncrementalDetection:
    def test_corruption_found_when_cursor_reaches_it(self, adb):
        slots = insert_accounts(adb, 20)
        table = adb.table("acct")
        FaultInjector(adb, seed=1).wild_write(table.record_address(slots[10]) + 8, 8)
        found = None
        for _ in range(region_count(adb) + 1):
            report = adb.auditor.run_incremental(batch=3)
            if not report.clean:
                found = report
                break
        assert found is not None
        assert adb.auditor.failures == 1

    def test_failed_sweep_restarts_from_zero(self, adb):
        slots = insert_accounts(adb, 20)
        table = adb.table("acct")
        FaultInjector(adb, seed=1).wild_write(table.record_address(slots[1]) + 8, 8)
        report = adb.auditor.run_incremental(batch=region_count(adb))
        assert not report.clean
        assert adb.auditor._cursor == 0

    def test_baseline_scheme_trivially_clean(self, db):
        insert_accounts(db, 2)
        report = db.auditor.run_incremental(batch=5)
        assert report.clean
