"""Property-based tests for the extension subsystems.

* archive equivalence -- recovering from an archive + amended log reaches
  the same committed state as recovering from the latest checkpoint;
* logical deletion -- deleting a random committed transaction leaves a
  conflict-consistent delete history containing its full taint closure.
"""

from __future__ import annotations

import shutil

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro import Database, DBConfig, FaultInjector
from repro.errors import RecoveryError
from repro.recovery.archive import create_archive, recover_from_archive
from repro.recovery.history import check_conflict_consistent
from repro.recovery.logical import delete_transactions

from tests.conftest import ACCT_SCHEMA

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

workload = st.lists(
    st.tuples(
        st.sampled_from(["write", "read_then_write", "wild"]),
        st.integers(0, 14),
        st.integers(0, 14),
    ),
    min_size=4,
    max_size=12,
)


def fresh(tmp_path, sub, scheme, record_history=False):
    path = tmp_path / sub
    if path.exists():
        shutil.rmtree(path)
    config = DBConfig(dir=str(path), scheme=scheme, record_history=record_history)
    db = Database(config)
    db.create_table("acct", ACCT_SCHEMA, 60, key_field="id")
    db.start()
    table = db.table("acct")
    txn = db.begin()
    slots = {i: table.insert(txn, {"id": i, "balance": 100}) for i in range(15)}
    db.commit(txn)
    return db, slots


def committed_state(db):
    table = db.table("acct")
    txn = db.begin()
    state = {
        slot: table.read_bytes(txn, slot) for slot in table.scan_slots(txn)
    }
    db.commit(txn)
    return state


def run_ops(db, slots, script, injector):
    table = db.table("acct")
    txn_ids = []
    for kind, a, b in script:
        if kind == "wild":
            injector.wild_write(table.record_address(slots[a]) + 8, 8)
            continue
        txn = db.begin()
        if kind == "write":
            table.update(txn, slots[b], {"balance": a * 13 + 1})
        else:
            value = table.read(txn, slots[a])["balance"]
            table.update(txn, slots[b], {"balance": value + 1})
        db.commit(txn)
        txn_ids.append(txn.txn_id)
    return txn_ids


class TestArchiveEquivalence:
    @SLOW
    @given(script=workload, archive_at=st.integers(0, 3))
    def test_archive_replay_reaches_direct_recovery_state(
        self, tmp_path, script, archive_at
    ):
        db, slots = fresh(tmp_path, "arch", "cw_read_logging")
        try:
            injector = FaultInjector(db, seed=11)
            info = None
            try:
                for i, step in enumerate(script):
                    if i == archive_at:
                        info = create_archive(db, db.path("archive"))
                    run_ops(db, slots, [step], injector)
                if info is None:
                    info = create_archive(db, db.path("archive"))
            except RecoveryError:
                # The archive point landed after an injected wild write:
                # certification correctly refuses to archive a corrupt
                # image.  Vacuous case for this property.
                assume(False)
            report = db.audit()
            if report.clean:
                db.crash()
            else:
                db.crash_with_corruption(report)
            db_direct, _ = Database.recover(db.config)
            direct_state = committed_state(db_direct)
            db_direct.crash()
            db_archive, _ = recover_from_archive(db_direct.config, info.path)
            assert committed_state(db_archive) == direct_state
            assert db_archive.audit().clean
            db_archive.close()
        finally:
            db.close()


class TestLogicalDeletionProperties:
    @SLOW
    @given(script=workload, victim_index=st.integers(0, 11))
    def test_delete_history_is_conflict_consistent(
        self, tmp_path, script, victim_index
    ):
        script = [s for s in script if s[0] != "wild"]  # logical-only run
        if not script:
            script = [("write", 1, 1)]
        db, slots = fresh(tmp_path, "logic", "read_logging", record_history=True)
        try:
            injector = FaultInjector(db, seed=1)
            txn_ids = run_ops(db, slots, script, injector)
            victim = txn_ids[victim_index % len(txn_ids)]
            history = db.history
            db.crash()
            db2, report = delete_transactions(db.config, [victim])
            assert victim in report.deleted_set
            assert check_conflict_consistent(history, report.deleted_set) == []
            assert db2.audit().clean
            db2.close()
        finally:
            db.close()
