"""Batched WAL codec equivalence: bytes and meter identical to the seed.

The batched write path (``encode_into`` + single-buffer ``flush`` +
``extend`` bulk charging) is a pure performance change: the stable-log
*bytes* and the *meter trace* must be indistinguishable from the original
per-record implementation.  This suite pins that with a seed-faithful
reference codec copied inline (the pre-batching ``encode_record`` /
``flush`` logic) and property tests over randomized records.
"""

from __future__ import annotations

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogError
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.wal.records import (
    AmendRecord,
    AuditBeginRecord,
    AuditEndRecord,
    LogicalUndo,
    OpBeginRecord,
    OpCommitRecord,
    ReadRecord,
    RecordType,
    TxnAbortRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    decode_record,
    encode_into,
    encode_record,
    iter_records,
)
from repro.wal.system_log import SystemLog

# --------------------------------------------------------------------------
# Seed-faithful reference codec: the pre-batching encoder, verbatim logic
# (isinstance chain, per-piece struct.pack, bytes joins).  Byte-identity of
# the new encoder against THIS is what keeps old logs readable and new logs
# readable by old code.
# --------------------------------------------------------------------------

_OPT_U32_NONE = 0xFFFFFFFFFFFFFFFF


def _seed_encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _seed_pack_opt_u32(value):
    return struct.pack("<Q", _OPT_U32_NONE if value is None else value)


def seed_encode_record(record) -> bytes:
    if isinstance(record, UpdateRecord):
        rtype = RecordType.UPDATE
        payload = (
            struct.pack("<QqI", record.txn_id, record.address, len(record.image))
            + _seed_pack_opt_u32(record.old_checksum)
            + record.image
        )
    elif isinstance(record, ReadRecord):
        rtype = RecordType.READ
        payload = struct.pack(
            "<QqI", record.txn_id, record.address, record.length
        ) + _seed_pack_opt_u32(record.checksum)
    elif isinstance(record, OpBeginRecord):
        rtype = RecordType.OP_BEGIN
        payload = struct.pack(
            "<QQB", record.txn_id, record.op_id, record.level
        ) + _seed_encode_str(record.object_key)
    elif isinstance(record, OpCommitRecord):
        rtype = RecordType.OP_COMMIT
        payload = (
            struct.pack("<QQB", record.txn_id, record.op_id, record.level)
            + _seed_encode_str(record.object_key)
            + record.logical_undo.encode()
        )
    elif isinstance(record, TxnBeginRecord):
        rtype = RecordType.TXN_BEGIN
        payload = struct.pack("<QB", record.txn_id, int(record.is_recovery))
    elif isinstance(record, TxnCommitRecord):
        rtype = RecordType.TXN_COMMIT
        payload = struct.pack("<Q", record.txn_id)
    elif isinstance(record, TxnAbortRecord):
        rtype = RecordType.TXN_ABORT
        payload = struct.pack("<Q", record.txn_id)
    elif isinstance(record, AuditBeginRecord):
        rtype = RecordType.AUDIT_BEGIN
        payload = struct.pack("<Q", record.txn_id)
    elif isinstance(record, AuditEndRecord):
        rtype = RecordType.AUDIT_END
        payload = struct.pack(
            "<QBII",
            record.txn_id,
            int(record.clean),
            record.region_size,
            len(record.corrupt_regions),
        ) + struct.pack(f"<{len(record.corrupt_regions)}I", *record.corrupt_regions)
    elif isinstance(record, AmendRecord):
        rtype = RecordType.AMEND
        payload = struct.pack(
            "<QQBII",
            record.txn_id,
            record.audit_sn,
            int(record.use_checksums),
            len(record.corrupt_ranges),
            len(record.root_txns),
        )
        for start, length in record.corrupt_ranges:
            payload += struct.pack("<qq", start, length)
        payload += struct.pack(f"<{len(record.root_txns)}Q", *record.root_txns)
    else:  # pragma: no cover - strategy only builds known types
        raise LogError(f"cannot encode record of type {type(record).__name__}")

    body = bytes([rtype]) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack("<I", len(body)) + body + struct.pack("<I", crc)


def seed_stable_bytes(framed: list[tuple[int, object]]) -> bytes:
    """Exactly what the seed ``flush`` wrote: lsn header + framed record."""
    return b"".join(
        struct.pack("<Q", lsn) + seed_encode_record(record) for lsn, record in framed
    )


# --------------------------------------------------------------------------
# Record strategies
# --------------------------------------------------------------------------

_u64 = st.integers(min_value=0, max_value=2**64 - 1)
_i48 = st.integers(min_value=-(2**47), max_value=2**47 - 1)
_u32 = st.integers(min_value=0, max_value=2**32 - 1)
_u8 = st.integers(min_value=0, max_value=255)
_opt_u32 = st.none() | st.integers(min_value=0, max_value=2**32 - 1)
_key = st.text(max_size=12)

_undo_arg = (
    st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.text(max_size=8)
    | st.binary(max_size=8)
)
_logical_undo = st.builds(
    LogicalUndo,
    op_name=st.text(max_size=10),
    args=st.lists(_undo_arg, max_size=4).map(tuple),
)

_record = st.one_of(
    st.builds(
        UpdateRecord,
        txn_id=_u64,
        address=_i48,
        image=st.binary(max_size=64),
        old_checksum=_opt_u32,
    ),
    st.builds(
        ReadRecord, txn_id=_u64, address=_i48, length=_u32, checksum=_opt_u32
    ),
    st.builds(
        OpBeginRecord, txn_id=_u64, op_id=_u64, level=_u8, object_key=_key
    ),
    st.builds(
        OpCommitRecord,
        txn_id=_u64,
        op_id=_u64,
        level=_u8,
        object_key=_key,
        logical_undo=_logical_undo,
    ),
    st.builds(TxnBeginRecord, txn_id=_u64, is_recovery=st.booleans()),
    st.builds(TxnCommitRecord, txn_id=_u64),
    st.builds(TxnAbortRecord, txn_id=_u64),
    st.builds(AuditBeginRecord, txn_id=_u64),
    st.builds(
        AuditEndRecord,
        txn_id=_u64,
        clean=st.booleans(),
        corrupt_regions=st.lists(_u32, max_size=5).map(tuple),
        region_size=_u32,
    ),
    st.builds(
        AmendRecord,
        txn_id=_u64,
        corrupt_ranges=st.lists(st.tuples(_i48, _i48), max_size=4).map(tuple),
        audit_sn=_u64,
        use_checksums=st.booleans(),
        root_txns=st.lists(_u64, max_size=4).map(tuple),
    ),
)


def make_meter() -> Meter:
    return Meter(VirtualClock(), DEFAULT_COSTS)


# --------------------------------------------------------------------------
# Codec equivalence
# --------------------------------------------------------------------------


class TestCodecByteIdentity:
    @given(record=_record)
    @settings(max_examples=300, deadline=None)
    def test_encode_into_matches_seed_bytes(self, record):
        expected = seed_encode_record(record)
        buf = bytearray()
        encode_into(record, buf)
        assert bytes(buf) == expected
        assert encode_record(record) == expected

    @given(record=_record, prefix=st.binary(max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_encode_into_appends_after_existing_content(self, record, prefix):
        buf = bytearray(prefix)
        encode_into(record, buf)
        assert bytes(buf) == prefix + seed_encode_record(record)

    @given(record=_record)
    @settings(max_examples=200, deadline=None)
    def test_decode_roundtrip_from_memoryview(self, record):
        frame = encode_record(record)
        decoded, end = decode_record(memoryview(frame))
        assert decoded == record
        assert end == len(frame)

    @given(records=st.lists(_record, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_iter_records_matches_sequential_decode(self, records):
        buf = bytearray()
        for record in records:
            encode_into(record, buf)
        assert list(iter_records(buf)) == records


# --------------------------------------------------------------------------
# SystemLog: batched flush writes the seed's bytes and charges the seed's
# meter events.
# --------------------------------------------------------------------------


class TestFlushEquivalence:
    @given(records=st.lists(_record, min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_flush_bytes_and_meter_match_seed(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("wal") / "sys.log"
        log = SystemLog(str(path), make_meter())
        try:
            for record in records:
                log.append(record)
            framed = list(log.tail)
            expected_bytes = seed_stable_bytes(framed)
            log.flush()

            with open(path, "rb") as handle:
                assert handle.read() == expected_bytes

            # The seed charged: per append, log_record + log_byte x
            # approx_size; per non-empty flush, latch_pair + flush_fixed +
            # flush_byte x bytes written.  Bulk charging must land on the
            # same counters.
            counts = dict(log.meter.counts)
            assert counts == {
                "log_record": len(records),
                "log_byte": sum(r.approx_size() for r in records),
                "latch_pair": 1,
                "flush_fixed": 1,
                "flush_byte": len(expected_bytes),
            }
        finally:
            log.close()

    def test_empty_flush_charges_only_latch_pair(self, tmp_path):
        log = SystemLog(str(tmp_path / "sys.log"), make_meter())
        log.flush()
        assert dict(log.meter.counts) == {"latch_pair": 1}
        log.close()

    @given(records=st.lists(_record, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_extend_is_meter_identical_to_per_append(
        self, records, tmp_path_factory
    ):
        base = tmp_path_factory.mktemp("wal")
        batched = SystemLog(str(base / "a.log"), make_meter())
        scalar = SystemLog(str(base / "b.log"), make_meter())
        try:
            batched.extend(records)
            for record in records:
                scalar.append(record)
            assert batched.tail == scalar.tail
            assert batched.meter.snapshot() == scalar.meter.snapshot()
            batched.flush()
            scalar.flush()
            with open(batched.path, "rb") as a, open(scalar.path, "rb") as b:
                assert a.read() == b.read()
            assert batched.meter.snapshot() == scalar.meter.snapshot()
        finally:
            batched.close()
            scalar.close()


# --------------------------------------------------------------------------
# Byte-splice truncation and the cached stable-record counter
# --------------------------------------------------------------------------


class TestTruncateAndCount:
    def _filled_log(self, tmp_path, count=12):
        log = SystemLog(str(tmp_path / "sys.log"), make_meter())
        for i in range(count):
            log.append(TxnCommitRecord(i))
        log.flush()
        return log

    def test_truncate_before_splices_exact_suffix(self, tmp_path):
        log = self._filled_log(tmp_path)
        survivors = [(lsn, rec) for lsn, rec in log.scan() if lsn >= 5]
        removed = log.truncate_before(5)
        assert removed == 5
        with open(log.path, "rb") as handle:
            assert handle.read() == seed_stable_bytes(survivors)
        assert [lsn for lsn, _ in log.scan()] == list(range(5, 12))
        log.close()

    def test_stable_record_count_tracks_flushes(self, tmp_path):
        log = self._filled_log(tmp_path, count=7)
        assert log.stable_record_count == 7
        log.append(TxnCommitRecord(99))
        assert log.stable_record_count == 7  # tail not stable yet
        log.flush()
        assert log.stable_record_count == 8
        log.truncate_before(3)
        assert log.stable_record_count == 5
        log.close()

    def test_stable_record_count_recounts_after_reopen(self, tmp_path):
        log = self._filled_log(tmp_path, count=9)
        log.close()
        reopened = SystemLog(str(tmp_path / "sys.log"), make_meter())
        assert reopened.stable_record_count == 9
        reopened.close()

    def test_scan_with_only_filter_still_verifies_crcs(self, tmp_path):
        log = SystemLog(str(tmp_path / "sys.log"), make_meter())
        log.append(TxnBeginRecord(1))
        log.append(UpdateRecord(1, 0, b"\x01" * 8))
        log.append(TxnCommitRecord(1))
        log.flush()
        picked = list(log.scan(only=(TxnCommitRecord,)))
        assert [type(r).__name__ for _l, r in picked] == ["TxnCommitRecord"]
        # Damage a skipped record's body: the filtered scan must still
        # notice (every frame is CRC-checked even when not constructed).
        with open(log.path, "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff\xfe")
        list(log.scan(only=(TxnCommitRecord,)))
        assert log.torn_tail_detected
        log.close()


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
