"""Single-member pipeline == bare scheme, meter-identical, property-tested.

The pipeline refactor routes every ``DBConfig`` -- stacked or not --
through one :class:`~repro.core.pipeline.ProtectionPipeline`.  That is
only safe if wrapping a bare scheme changes *nothing observable*: the
same hook sequence must charge the same meter events, advance virtual
time by the same nanoseconds, and leave memory and codewords in the same
state.  This property holds for every scheme name across random
hook-level workloads (reads, update windows, abandoned windows, physical
undo replay, operation ends and audits).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ProtectionPipeline
from repro.core.schemes import SCHEME_NAMES, make_scheme
from repro.mem.memory import MemoryImage
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.txn.transaction import Transaction
from repro.wal.local_log import PhysicalUndo

PAGE = 8
SEGMENTS = (300, 212)
SIZE = sum(SEGMENTS)

#: Params mirroring the Table 2 configurations; hardware/baseline take none.
SCHEME_PARAMS = {
    "data_cw": {"region_size": 64},
    "precheck": {"region_size": 64},
    "read_logging": {"region_size": 64},
    "cw_read_logging": {"region_size": 64},
    "deferred": {"region_size": 64},
}

windows = st.tuples(
    st.integers(min_value=0, max_value=SIZE - 1),
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=255),
)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("read"), windows),
        st.tuples(st.just("update"), windows),
        st.tuples(st.just("abandon"), windows),
        st.tuples(st.just("undo"), windows),
        st.tuples(st.just("op_end"), windows),
        st.tuples(st.just("audit"), windows),
    ),
    min_size=1,
    max_size=24,
)


def build_side(scheme_name: str, wrap: bool):
    scheme = make_scheme(scheme_name, **SCHEME_PARAMS.get(scheme_name, {}))
    if wrap:
        scheme = ProtectionPipeline([scheme])
    memory = MemoryImage(page_size=PAGE)
    for index, size in enumerate(SEGMENTS):
        memory.add_segment(f"s{index}", size, kind="data" if index else "control")
    memory.restore(0, bytes((7 * i + 3) % 256 for i in range(memory.size)))
    meter = Meter(VirtualClock(), DEFAULT_COSTS)
    scheme.attach(memory, meter)
    scheme.startup()
    return scheme, memory, meter


def drive(scheme, memory, ops):
    """Replay one hook-level workload against a scheme or pipeline."""
    txn = Transaction(1)
    completed: list[PhysicalUndo] = []
    seq = 0
    for kind, (address, length, fill) in ops:
        length = min(length, memory.size - address)
        if kind == "read":
            scheme.on_read(txn, address, length)
            memory.read(address, length)
        elif kind == "update":
            scheme.on_begin_update(txn, address, length)
            old = memory.read(address, length)
            new = bytes((b + fill) % 256 for b in old)
            memory.write(address, new)
            scheme.on_end_update(txn, address, old, new)
            completed.append(
                PhysicalUndo(
                    seq=seq,
                    op_id=1,
                    address=address,
                    image=old,
                    codeword_applied=True,
                )
            )
            seq += 1
        elif kind == "abandon":
            # An error path: the window opens, bytes are scribbled, and
            # the manager rolls back with codeword_applied=False.
            scheme.on_begin_update(txn, address, length)
            old = memory.read(address, length)
            memory.write(address, bytes((b ^ fill) % 256 for b in old))
            scheme.close_update_window(txn, address, length)
            scheme.apply_physical_undo(
                txn,
                PhysicalUndo(
                    seq=seq,
                    op_id=1,
                    address=address,
                    image=old,
                    codeword_applied=False,
                ),
            )
            seq += 1
        elif kind == "undo" and completed:
            scheme.apply_physical_undo(txn, completed.pop())
        elif kind == "op_end":
            scheme.on_operation_end(txn)
        elif kind == "audit":
            assert scheme.audit_regions() == []


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
class TestSingleMemberPipelineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_meter_identical_to_bare_scheme(self, scheme_name, ops):
        bare, bare_memory, bare_meter = build_side(scheme_name, wrap=False)
        piped, piped_memory, piped_meter = build_side(scheme_name, wrap=True)

        drive(bare, bare_memory, ops)
        drive(piped, piped_memory, ops)

        # Same events, same counts, same virtual nanoseconds.
        assert piped_meter.snapshot() == bare_meter.snapshot()
        assert piped_meter.clock.now_ns == bare_meter.clock.now_ns
        # Same bytes and (where applicable) the same codewords.
        assert piped_memory.read(0, SIZE) == bare_memory.read(0, SIZE)
        if bare.uses_codewords:
            assert piped.audit_regions() == bare.audit_regions() == []

    def test_folded_capabilities_match_bare_scheme(self, scheme_name):
        bare = make_scheme(scheme_name, **SCHEME_PARAMS.get(scheme_name, {}))
        piped = ProtectionPipeline(
            [make_scheme(scheme_name, **SCHEME_PARAMS.get(scheme_name, {}))]
        )
        assert piped.name == bare.name
        assert piped.uses_codewords == bare.uses_codewords
        assert piped.logs_reads == bare.logs_reads
        assert piped.logs_read_checksums == bare.logs_read_checksums
        assert piped.direct_protection == bare.direct_protection
        assert piped.indirect_protection == bare.indirect_protection
        assert not piped.combines_evidence
        assert piped.space_overhead == bare.space_overhead
