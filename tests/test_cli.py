"""The python -m repro.bench command-line interface."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_table1_only(self, capsys):
        assert main(["--table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "UltraSPARC 2" in out
        assert "43,000" in out
        assert "Table 2" not in out

    def test_table2_tiny_scale(self, capsys):
        assert main(["--table", "2", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Baseline" in out
        assert "Memory Protection" in out

    def test_bad_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["--table", "9"])
