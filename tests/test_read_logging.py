"""Read Logging: the limited audit trail of Section 4.2."""

from repro.core.codeword import fold_words
from repro.wal.records import ReadRecord, UpdateRecord

from tests.conftest import insert_accounts


def stable_reads(db):
    return [r for _l, r in db.system_log.scan() if isinstance(r, ReadRecord)]


def stable_updates(db):
    return [r for _l, r in db.system_log.scan() if isinstance(r, UpdateRecord)]


class TestPlainReadLogging:
    def test_reads_produce_log_records(self, db_factory):
        db = db_factory(scheme="read_logging")
        slots = insert_accounts(db, 3)
        table = db.table("acct")
        txn = db.begin()
        table.read(txn, slots[1])
        db.commit(txn)
        reads = [r for r in stable_reads(db) if r.txn_id == txn.txn_id]
        record_read = [
            r for r in reads if r.address == table.record_address(slots[1])
        ]
        assert record_read, "record read must be logged"
        assert record_read[0].length == table.schema.record_size

    def test_identity_not_value_is_logged(self, db_factory):
        """The read record stores address+length, never the bytes read."""
        db = db_factory(scheme="read_logging")
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.read(txn, slots[0])
        db.commit(txn)
        for r in stable_reads(db):
            assert not hasattr(r, "image")
            assert r.checksum is None  # plain variant logs no checksum

    def test_index_and_allocator_reads_are_traced(self, db_factory):
        """Reads through internal structures also land in the audit trail."""
        db = db_factory(scheme="read_logging")
        insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.lookup(txn, 0)
        db.commit(txn)
        reads = [r for r in stable_reads(db) if r.txn_id == txn.txn_id]
        index_base = table.index.base
        index_end = index_base + table.index.size
        assert any(index_base <= r.address < index_end for r in reads)

    def test_read_count_statistic(self, db_factory):
        db = db_factory(scheme="read_logging")
        slots = insert_accounts(db, 2)
        before = db.scheme.read_records_logged
        txn = db.begin()
        db.table("acct").read(txn, slots[0])
        db.commit(txn)
        assert db.scheme.read_records_logged > before


class TestChecksummedReadLogging:
    def test_read_records_carry_checksums(self, db_factory):
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        address = table.record_address(slots[0])
        expected = fold_words(db.memory.read(address, table.schema.record_size))
        txn = db.begin()
        table.read(txn, slots[0])
        db.commit(txn)
        matching = [
            r
            for r in stable_reads(db)
            if r.txn_id == txn.txn_id and r.address == address
        ]
        assert matching and matching[0].checksum == expected

    def test_update_records_carry_old_checksum(self, db_factory):
        """Writes are treated as read-then-write (Section 4.3 extension)."""
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        offset, _ = table.schema.field_range("balance")
        address = table.record_address(slots[0]) + offset
        old_bytes = db.memory.read(address, 8)
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 777})
        db.commit(txn)
        updates = [
            r
            for r in stable_updates(db)
            if r.txn_id == txn.txn_id and r.address == address
        ]
        assert updates and updates[0].old_checksum == fold_words(old_bytes)

    def test_plain_variant_updates_have_no_checksum(self, db_factory):
        db = db_factory(scheme="read_logging")
        slots = insert_accounts(db, 1)
        txn = db.begin()
        db.table("acct").update(txn, slots[0], {"balance": 777})
        db.commit(txn)
        assert all(
            r.old_checksum is None
            for r in stable_updates(db)
            if r.txn_id == txn.txn_id
        )

    def test_checksum_cost_charged(self, db_factory):
        db = db_factory(scheme="cw_read_logging")
        slots = insert_accounts(db, 1)
        db.meter.reset()
        txn = db.begin()
        db.table("acct").read(txn, slots[0])
        db.commit(txn)
        assert db.meter.counts["checksum_word"] > 0
