"""Fault injector: the addressing-error model."""

import pytest

from repro import FaultInjector
from repro.errors import ConfigError

from tests.conftest import insert_accounts


class TestWildWrite:
    def test_changes_bytes_and_records_event(self, db):
        insert_accounts(db, 3)
        injector = FaultInjector(db, seed=1)
        event = injector.wild_write()
        assert event.old != event.new
        assert db.memory.read(event.address, event.length) == event.new
        assert injector.events == [event]

    def test_explicit_target(self, db):
        insert_accounts(db, 1)
        address = db.table("acct").record_address(0)
        event = injector = FaultInjector(db, seed=1).wild_write(address, 4)
        assert event.address == address

    def test_explicit_data(self, db):
        insert_accounts(db, 1)
        event = FaultInjector(db).wild_write(0, data=b"\xca\xfe")
        assert event.new == b"\xca\xfe"
        assert db.memory.read(0, 2) == b"\xca\xfe"

    def test_bypasses_dirty_tracking(self, db):
        insert_accounts(db, 1)
        db.checkpoint()
        db.checkpoint()  # drain both pending sets
        FaultInjector(db, seed=2).wild_write()
        # No page became dirty: the checkpointer will not write the
        # corruption out -- which is why certification audits everything.
        assert db.memory.dirty_pages.pending_for("A") == frozenset()

    def test_deterministic_with_seed(self, db_factory):
        events = []
        for _ in range(2):
            db = db_factory()
            insert_accounts(db, 5)
            events.append(FaultInjector(db, seed=99).wild_write())
        assert events[0].address == events[1].address
        assert events[0].new == events[1].new


class TestBitFlip:
    def test_flips_exactly_one_bit(self, db):
        insert_accounts(db, 1)
        event = FaultInjector(db, seed=1).bit_flip(address=8)
        diff = event.old[0] ^ event.new[0]
        assert diff != 0 and diff & (diff - 1) == 0  # power of two


class TestCopyOverrun:
    def test_clobbers_bytes_past_record_end(self, db):
        slots = insert_accounts(db, 2)
        table = db.table("acct")
        record0 = db.memory.read(table.record_address(slots[0]), 32)
        event = FaultInjector(db, seed=1).copy_overrun("acct", slots[0], overrun=8)
        assert event.address == table.record_address(slots[0]) + 32
        # record 0 itself untouched; record 1's head clobbered
        assert db.memory.read(table.record_address(slots[0]), 32) == record0

    def test_zero_overrun_rejected(self, db):
        insert_accounts(db, 1)
        with pytest.raises(ConfigError):
            FaultInjector(db).copy_overrun("acct", 0, overrun=0)

    def test_detected_by_audit(self, db_factory):
        db = db_factory(scheme="data_cw")
        slots = insert_accounts(db, 3)
        FaultInjector(db, seed=1).copy_overrun("acct", slots[0])
        assert not db.audit().clean


class TestCorruptRecord:
    def test_overwrites_whole_record(self, db):
        slots = insert_accounts(db, 1)
        event = FaultInjector(db, seed=1).corrupt_record("acct", slots[0])
        assert event.length == db.table("acct").schema.record_size
