"""Fault injector: the addressing-error model."""

import pytest

from repro import Database, DBConfig, FaultInjector, tear_log_tail
from repro.errors import ConfigError
from repro.wal.system_log import SystemLog

from tests.conftest import ACCT_SCHEMA, insert_accounts


class TestWildWrite:
    def test_changes_bytes_and_records_event(self, db):
        insert_accounts(db, 3)
        injector = FaultInjector(db, seed=1)
        event = injector.wild_write()
        assert event.old != event.new
        assert db.memory.read(event.address, event.length) == event.new
        assert injector.events == [event]

    def test_explicit_target(self, db):
        insert_accounts(db, 1)
        address = db.table("acct").record_address(0)
        event = injector = FaultInjector(db, seed=1).wild_write(address, 4)
        assert event.address == address

    def test_explicit_data(self, db):
        insert_accounts(db, 1)
        event = FaultInjector(db).wild_write(0, data=b"\xca\xfe")
        assert event.new == b"\xca\xfe"
        assert db.memory.read(0, 2) == b"\xca\xfe"

    def test_bypasses_dirty_tracking(self, db):
        insert_accounts(db, 1)
        db.checkpoint()
        db.checkpoint()  # drain both pending sets
        FaultInjector(db, seed=2).wild_write()
        # No page became dirty: the checkpointer will not write the
        # corruption out -- which is why certification audits everything.
        assert db.memory.dirty_pages.pending_for("A") == frozenset()

    def test_deterministic_with_seed(self, db_factory):
        events = []
        for _ in range(2):
            db = db_factory()
            insert_accounts(db, 5)
            events.append(FaultInjector(db, seed=99).wild_write())
        assert events[0].address == events[1].address
        assert events[0].new == events[1].new


class TestBitFlip:
    def test_flips_exactly_one_bit(self, db):
        insert_accounts(db, 1)
        event = FaultInjector(db, seed=1).bit_flip(address=8)
        diff = event.old[0] ^ event.new[0]
        assert diff != 0 and diff & (diff - 1) == 0  # power of two


class TestCopyOverrun:
    def test_clobbers_bytes_past_record_end(self, db):
        slots = insert_accounts(db, 2)
        table = db.table("acct")
        record0 = db.memory.read(table.record_address(slots[0]), 32)
        event = FaultInjector(db, seed=1).copy_overrun("acct", slots[0], overrun=8)
        assert event.address == table.record_address(slots[0]) + 32
        # record 0 itself untouched; record 1's head clobbered
        assert db.memory.read(table.record_address(slots[0]), 32) == record0

    def test_zero_overrun_rejected(self, db):
        insert_accounts(db, 1)
        with pytest.raises(ConfigError):
            FaultInjector(db).copy_overrun("acct", 0, overrun=0)

    def test_detected_by_audit(self, db_factory):
        db = db_factory(scheme="data_cw")
        slots = insert_accounts(db, 3)
        FaultInjector(db, seed=1).copy_overrun("acct", slots[0])
        assert not db.audit().clean


class TestCorruptRecord:
    def test_overwrites_whole_record(self, db):
        slots = insert_accounts(db, 1)
        event = FaultInjector(db, seed=1).corrupt_record("acct", slots[0])
        assert event.length == db.table("acct").schema.record_size


class _PinnedRng:
    """Drives every random choice to its extreme: always pick ``segment``,
    always return the largest value ``randrange`` allows."""

    def __init__(self, segment):
        self._segment = segment

    def choice(self, seq):
        return self._segment

    def randrange(self, n):
        return n - 1


class TestRandomAddressBounds:
    def test_last_in_bounds_offset_is_reachable(self, db):
        insert_accounts(db, 1)
        injector = FaultInjector(db, seed=1)
        segment = next(s for s in db.memory.segments if s.kind == "data")
        injector.rng = _PinnedRng(segment)
        event = injector.wild_write(length=8, data=b"\xa5" * 8)
        # The fault ends flush against the segment's last byte: the
        # off-by-one in the old clamp made this offset unreachable.
        assert event.address + event.length == segment.base + segment.size

    def test_fault_longer_than_segment_stays_in_memory(self, db):
        insert_accounts(db, 1)
        injector = FaultInjector(db, seed=1)
        for segment in (s for s in db.memory.segments if s.kind == "data"):
            injector.rng = _PinnedRng(segment)
            length = segment.size + 8
            event = injector.wild_write(length=length, data=b"\x5a" * length)
            assert event.address <= segment.base
            assert event.address + event.length <= db.memory.size


class TestTearLogTailFrames:
    def test_cut_and_frames_are_exclusive(self, db):
        insert_accounts(db, 1)
        with pytest.raises(ConfigError):
            tear_log_tail(db.system_log.path, cut=1, frames=1)

    def test_frames_must_be_positive(self, db):
        insert_accounts(db, 1)
        with pytest.raises(ConfigError):
            tear_log_tail(db.system_log.path, frames=0)

    def test_frames_beyond_log_length_rejected(self, db):
        insert_accounts(db, 1)
        with pytest.raises(ConfigError):
            tear_log_tail(db.system_log.path, frames=10**6)

    def test_frame_tear_leaves_clean_shorter_log(self, db):
        insert_accounts(db, 3)
        db.crash()
        before = SystemLog(db.system_log.path, db.meter)
        count = len(list(before.scan(strict=True)))
        before.close()
        removed = tear_log_tail(db.system_log.path, frames=2)
        assert len(removed) > 0
        after = SystemLog(db.system_log.path, db.meter)
        # The tear lands exactly on a frame boundary: a strict scan sees
        # a clean log, just two records shorter -- nothing to detect.
        survivors = list(after.scan(strict=True))
        assert len(survivors) == count - 2
        assert not after.torn_tail_detected
        after.close()


class TestGroupCommitLoss:
    def test_frame_tear_swallows_buffered_commit_undetectably(self, tmp_path):
        """Group commit batches several commits into one flush; a crash
        that loses whole trailing frames swallows reported commits with
        *no* torn tail for recovery to notice -- the documented <= N-1
        durability trade, now reproducible byte-exactly."""
        config = DBConfig(
            dir=str(tmp_path / "gc"), scheme="baseline", group_commit_size=3
        )
        db = Database(config)
        db.create_table("acct", ACCT_SCHEMA, 64, key_field="id")
        db.start()
        slots = insert_accounts(db, 3)
        db.checkpoint()
        db.manager.flush_commits()  # drain the setup commits' window
        table = db.table("acct")
        for i, value in enumerate((111, 112, 113)):
            txn = db.begin()
            table.update(txn, slots[i], {"balance": value})
            db.commit(txn)  # third commit fills the window: one flush of 3
        assert db.system_log.tail == []
        db.crash()

        # Tear the final frame -- the last commit record -- off the
        # stable log.  The shorter log is *clean*: strict scan passes.
        FaultInjector(db, seed=3).torn_flush(frames=1)
        check = SystemLog(db.system_log.path, db.meter)
        list(check.scan(strict=True))
        assert not check.torn_tail_detected
        check.close()

        recovered, _report = Database.recover(config)
        rtable = recovered.table("acct")
        txn = recovered.begin()
        balances = [rtable.read(txn, slots[i])["balance"] for i in range(3)]
        recovered.commit(txn)
        assert balances == [111, 112, 100]
        recovered.close()
