"""Record schemas: layout, codec, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("count", FieldType.UINT32),
        Field("ratio", FieldType.FLOAT64),
        Field("label", FieldType.CHAR, 12),
    ]
)


class TestLayout:
    def test_record_size(self):
        assert SCHEMA.record_size == 8 + 4 + 8 + 12

    def test_offsets_are_sequential(self):
        assert SCHEMA.offset_of("id") == 0
        assert SCHEMA.offset_of("count") == 8
        assert SCHEMA.offset_of("ratio") == 12
        assert SCHEMA.offset_of("label") == 20

    def test_field_range(self):
        assert SCHEMA.field_range("count") == (8, 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            Schema([Field("a", FieldType.INT64), Field("a", FieldType.INT64)])

    def test_empty_schema_rejected(self):
        with pytest.raises(ConfigError):
            Schema([])

    def test_char_needs_size(self):
        with pytest.raises(ConfigError):
            Field("x", FieldType.CHAR)

    def test_size_only_for_char(self):
        with pytest.raises(ConfigError):
            Field("x", FieldType.INT64, 8)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            SCHEMA.offset_of("nope")


class TestCodec:
    def test_roundtrip(self):
        values = {"id": -5, "count": 42, "ratio": 2.5, "label": "hello"}
        decoded = SCHEMA.decode(SCHEMA.encode(values))
        assert decoded["id"] == -5
        assert decoded["count"] == 42
        assert decoded["ratio"] == 2.5
        assert decoded["label"] == b"hello"

    def test_missing_fields_default_to_zero(self):
        decoded = SCHEMA.decode(SCHEMA.encode({"id": 1}))
        assert decoded["count"] == 0
        assert decoded["label"] == b""

    def test_unknown_field_in_encode_rejected(self):
        with pytest.raises(ConfigError):
            SCHEMA.encode({"bogus": 1})

    def test_char_overflow_rejected(self):
        with pytest.raises(ConfigError):
            SCHEMA.encode({"label": "x" * 13})

    def test_char_accepts_bytes(self):
        decoded = SCHEMA.decode(SCHEMA.encode({"label": b"raw"}))
        assert decoded["label"] == b"raw"

    def test_decode_wrong_size_rejected(self):
        with pytest.raises(ConfigError):
            SCHEMA.decode(b"short")

    @given(
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(allow_nan=False, allow_infinity=False),
        st.binary(max_size=12).filter(lambda b: not b.endswith(b"\x00")),
    )
    def test_roundtrip_property(self, id_, count, ratio, label):
        values = {"id": id_, "count": count, "ratio": ratio, "label": label}
        decoded = SCHEMA.decode(SCHEMA.encode(values))
        assert decoded["id"] == id_
        assert decoded["count"] == count
        assert decoded["ratio"] == ratio
        assert decoded["label"] == label


class TestPersistence:
    def test_to_from_dict_roundtrip(self):
        rebuilt = Schema.from_dict(SCHEMA.to_dict())
        assert rebuilt.record_size == SCHEMA.record_size
        assert [f.name for f in rebuilt.fields] == [f.name for f in SCHEMA.fields]
        assert rebuilt.field("label").size == 12
