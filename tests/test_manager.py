"""Transaction manager: lifecycle, the prescribed interface, rollback."""

import pytest

from repro.errors import TransactionError
from repro.txn.transaction import TxnStatus
from repro.wal.records import (
    LogicalUndo,
    OpBeginRecord,
    OpCommitRecord,
    ReadRecord,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
)

from tests.conftest import insert_accounts


def record_addr(db, slot=0):
    return db.table("acct").record_address(slot)


class TestTransactionLifecycle:
    def test_begin_assigns_increasing_ids(self, db):
        t1, t2 = db.begin(), db.begin()
        assert t2.txn_id > t1.txn_id
        db.commit(t1)
        db.commit(t2)

    def test_commit_sets_status_and_clears_att(self, db):
        txn = db.begin()
        db.commit(txn)
        assert txn.status is TxnStatus.COMMITTED
        assert txn.txn_id not in db.manager.att

    def test_double_commit_rejected(self, db):
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionError):
            db.commit(txn)

    def test_commit_with_open_operation_rejected(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        with pytest.raises(TransactionError):
            db.commit(txn)
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)

    def test_commit_flushes_log(self, db):
        txn = db.begin()
        db.commit(txn)
        records = [r for _lsn, r in db.system_log.scan()]
        assert any(isinstance(r, TxnCommitRecord) and r.txn_id == txn.txn_id for r in records)

    def test_abort_sets_status(self, db):
        txn = db.begin()
        db.abort(txn)
        assert txn.status is TxnStatus.ABORTED


class TestPrescribedInterface:
    def test_update_outside_operation_rejected(self, db):
        txn = db.begin()
        with pytest.raises(TransactionError):
            db.manager.begin_update(txn, record_addr(db), 8)
        db.abort(txn)

    def test_write_outside_window_rejected(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        with pytest.raises(TransactionError):
            db.manager.write(txn, record_addr(db), b"x")
        db.manager.abort_operation(txn)
        db.abort(txn)

    def test_write_beyond_window_rejected(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.begin_update(txn, record_addr(db), 4)
        with pytest.raises(TransactionError):
            db.manager.write(txn, record_addr(db), b"12345")
        db.manager.end_update(txn)
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)

    def test_nested_windows_rejected(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.begin_update(txn, record_addr(db), 4)
        with pytest.raises(TransactionError):
            db.manager.begin_update(txn, record_addr(db) + 8, 4)
        db.manager.end_update(txn)
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)

    def test_end_update_without_begin_rejected(self, db):
        txn = db.begin()
        with pytest.raises(TransactionError):
            db.manager.end_update(txn)
        db.abort(txn)

    def test_update_generates_undo_and_redo(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        address = record_addr(db)
        db.manager.update(txn, address, b"ABCD")
        assert len(txn.undo_log) == 1
        undo = txn.undo_log.entries[0]
        assert undo.image == b"\x00" * 4
        assert undo.codeword_applied is True  # reset at end_update
        redo = txn.redo_log.records[-1]
        assert isinstance(redo, UpdateRecord) and redo.image == b"ABCD"
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)

    def test_codeword_applied_false_inside_window(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.begin_update(txn, record_addr(db), 4)
        assert txn.undo_log.entries[0].codeword_applied is False
        db.manager.end_update(txn)
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)


class TestOperationMigration:
    def test_records_migrate_at_op_commit(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "obj:1")
        db.manager.update(txn, record_addr(db), b"DATA")
        assert len(db.system_log.tail) == 1  # just TxnBegin
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        kinds = [type(r).__name__ for _l, r in db.system_log.tail]
        assert kinds == [
            "TxnBeginRecord",
            "OpBeginRecord",
            "UpdateRecord",
            "OpCommitRecord",
        ]
        db.commit(txn)

    def test_op_begin_carries_final_object_key(self, db):
        txn = db.begin()
        op = db.manager.begin_operation(txn, "tentative")
        op.object_key = "final:7"
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
        begins = [r for _l, r in db.system_log.scan() if isinstance(r, OpBeginRecord)]
        assert begins[-1].object_key == "final:7"

    def test_physical_undo_replaced_by_logical(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.update(txn, record_addr(db), b"DATA")
        db.manager.commit_operation(txn, LogicalUndo("undo_thing", ("a",)))
        assert len(txn.undo_log) == 1
        assert txn.undo_log.entries[0].undo.op_name == "undo_thing"
        db.commit(txn)

    def test_aborted_op_leaves_no_trace_in_system_log(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "x")
        db.manager.update(txn, record_addr(db), b"DATA")
        db.manager.abort_operation(txn)
        assert db.memory.read(record_addr(db), 4) == b"\x00" * 4
        assert len(db.system_log.tail) == 1  # only TxnBegin
        db.commit(txn)


class TestNestedOperations:
    def test_inner_commit_outer_abort(self, db):
        """Committed inner op is compensated logically when outer aborts."""
        table = db.table("acct")
        txn = db.begin()
        db.manager.begin_operation(txn, "outer")
        slot = table.insert(txn, {"id": 50, "balance": 1})  # inner op commits
        db.manager.abort_operation(txn)  # outer rolls back
        db.commit(txn)
        txn = db.begin()
        assert table.lookup(txn, 50) is None
        assert not table.allocator.is_allocated(table._ctx(txn), slot)
        db.commit(txn)

    def test_inner_abort_outer_commit(self, db):
        table = db.table("acct")
        txn = db.begin()
        db.manager.begin_operation(txn, "outer")
        db.manager.begin_operation(txn, "inner")
        db.manager.update(txn, record_addr(db, 1), b"XX")
        db.manager.abort_operation(txn)  # inner gone
        db.manager.update(txn, record_addr(db, 2), b"YY")
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
        assert db.memory.read(record_addr(db, 1), 2) == b"\x00\x00"
        assert db.memory.read(record_addr(db, 2), 2) == b"YY"

    def test_depth_tracks_nesting(self, db):
        txn = db.begin()
        db.manager.begin_operation(txn, "a")
        db.manager.begin_operation(txn, "b")
        assert txn.depth == 2
        assert txn.current_op.object_key == "b"
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.manager.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)


class TestTransactionAbort:
    def test_abort_undoes_committed_operations(self, db):
        table = db.table("acct")
        slots = insert_accounts(db, 3)
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 999})
        table.insert(txn, {"id": 77, "balance": 5})
        db.abort(txn)
        txn = db.begin()
        assert table.read(txn, slots[0])["balance"] == 100
        assert table.lookup(txn, 77) is None
        db.commit(txn)

    def test_abort_with_open_operation(self, db):
        table = db.table("acct")
        slots = insert_accounts(db, 1)
        txn = db.begin()
        db.manager.begin_operation(txn, "open")
        db.manager.update(txn, record_addr(db, slots[0]), b"junk")
        db.abort(txn)  # open op rolled back physically
        txn = db.begin()
        assert table.read(txn, slots[0])["id"] == 0
        db.commit(txn)

    def test_abort_with_open_update_window(self, db):
        slots = insert_accounts(db, 1)
        address = record_addr(db, slots[0])
        txn = db.begin()
        db.manager.begin_operation(txn, "w")
        db.manager.begin_update(txn, address, 8)
        db.manager.write(txn, address, b"\xff" * 8)
        db.abort(txn)  # window rolled back without codeword damage
        report = db.audit()
        assert report.clean

    def test_abort_releases_locks(self, db):
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 1})
        db.abort(txn)
        txn2 = db.begin()
        table.update(txn2, slots[0], {"balance": 2})  # no lock conflict
        db.commit(txn2)

    def test_abort_logs_abort_record(self, db):
        txn = db.begin()
        db.abort(txn)
        records = [r for _l, r in db.system_log.scan()]
        assert any(
            type(r).__name__ == "TxnAbortRecord" and r.txn_id == txn.txn_id
            for r in records
        )


class TestReadMigration:
    def test_reads_inside_op_migrate_with_op(self, db_factory):
        db = db_factory(scheme="read_logging")
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.update(txn, slots[0], {"balance": 7})
        db.commit(txn)
        reads = [r for _l, r in db.system_log.scan() if isinstance(r, ReadRecord)]
        assert any(r.txn_id == txn.txn_id for r in reads)

    def test_reads_outside_op_migrate_at_txn_commit(self, db_factory):
        db = db_factory(scheme="read_logging")
        slots = insert_accounts(db, 1)
        table = db.table("acct")
        txn = db.begin()
        table.read(txn, slots[0])  # read with no enclosing operation
        db.commit(txn)
        reads = [r for _l, r in db.system_log.scan() if isinstance(r, ReadRecord)]
        assert any(r.txn_id == txn.txn_id for r in reads)
