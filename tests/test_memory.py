"""Memory image: segments, flat addressing, write paths, dirty tracking."""

import pytest

from repro.errors import ConfigError, MemoryError_
from repro.mem.memory import MemoryImage


def image() -> MemoryImage:
    mem = MemoryImage(page_size=4096)
    mem.add_segment("data", 10_000, kind="data")
    mem.add_segment("ctl", 100, kind="control")
    return mem


class TestLayout:
    def test_segments_page_aligned_and_contiguous(self):
        mem = image()
        data, ctl = mem.segments
        assert data.base == 0
        assert data.size % mem.page_size == 0
        assert ctl.base == data.end

    def test_duplicate_segment_rejected(self):
        mem = image()
        with pytest.raises(ConfigError):
            mem.add_segment("data", 100)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            MemoryImage().add_segment("x", 100, kind="weird")

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigError):
            MemoryImage(page_size=100)  # not a multiple of 8

    def test_segment_lookup(self):
        mem = image()
        assert mem.segment("ctl").kind == "control"
        with pytest.raises(MemoryError_):
            mem.segment("nope")

    def test_page_count(self):
        mem = image()
        assert mem.page_count * mem.page_size == mem.size


class TestAccess:
    def test_fresh_memory_is_zero(self):
        assert image().read(0, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self):
        mem = image()
        mem.write(100, b"hello")
        assert mem.read(100, 5) == b"hello"

    def test_cross_segment_read_write(self):
        mem = image()
        boundary = mem.segment("ctl").base - 4
        mem.write(boundary, b"12345678")
        assert mem.read(boundary, 8) == b"12345678"

    def test_out_of_bounds_rejected(self):
        mem = image()
        with pytest.raises(MemoryError_):
            mem.read(mem.size - 2, 4)
        with pytest.raises(MemoryError_):
            mem.write(-1, b"x")

    def test_negative_length_rejected(self):
        with pytest.raises(MemoryError_):
            image().read(0, -1)

    def test_zero_length_read(self):
        assert image().read(0, 0) == b""


class TestDirtyTracking:
    def test_write_marks_pages_dirty(self):
        mem = image()
        mem.write(mem.page_size - 2, b"abcd")  # spans pages 0 and 1
        pending = mem.dirty_pages.pending_for("A")
        assert {0, 1} <= pending

    def test_poke_does_not_mark_dirty(self):
        mem = image()
        mem.poke(0, b"wild")
        assert 0 not in mem.dirty_pages.pending_for("A")

    def test_restore_marks_dirty(self):
        mem = image()
        mem.restore(0, b"recovered")
        assert 0 in mem.dirty_pages.pending_for("A")


class TestSegmentLookup:
    """segment_for is a bisect over segment bases; must agree with a scan."""

    def test_bisect_agrees_with_linear_scan_at_boundaries(self):
        mem = MemoryImage(page_size=8)
        for i, size in enumerate((8, 24, 8, 40)):
            mem.add_segment(f"s{i}", size)
        for seg in mem.segments:
            assert mem.segment_for(seg.base) is seg
            assert mem.segment_for(seg.end - 1) is seg

    def test_unmapped_addresses_rejected(self):
        mem = image()
        with pytest.raises(MemoryError_):
            mem.segment_for(-1)
        with pytest.raises(MemoryError_):
            mem.segment_for(mem.size)

    def test_cross_segment_access_rejected(self):
        mem = image()
        boundary = mem.segment("ctl").base
        with pytest.raises(MemoryError_):
            mem.segment_for(boundary - 1, 2)


class TestView:
    def test_view_equals_read(self):
        mem = image()
        mem.write(100, b"hello")
        view = mem.view(96, 16)
        assert bytes(view) == mem.read(96, 16)

    def test_view_is_zero_copy(self):
        mem = image()
        view = mem.view(0, 8)
        mem.poke(0, b"\xab")  # mutation is visible through the live view
        assert view[0] == 0xAB

    def test_view_crossing_segments_returns_none(self):
        mem = image()
        boundary = mem.segment("ctl").base
        assert mem.view(boundary - 4, 8) is None
        assert mem.view(boundary - 4, 4) is not None
        assert mem.view(boundary, 4) is not None

    def test_view_out_of_bounds_rejected(self):
        mem = image()
        with pytest.raises(MemoryError_):
            mem.view(mem.size - 2, 4)
        with pytest.raises(MemoryError_):
            mem.view(-1, 4)
        with pytest.raises(MemoryError_):
            mem.view(0, -1)


class TestPageViews:
    def test_page_bytes_and_load_page(self):
        mem = image()
        mem.write(0, b"front")
        page = mem.page_bytes(0)
        assert page.startswith(b"front")
        mem.load_page(1, b"\xaa" * mem.page_size)
        assert mem.read(mem.page_size, 2) == b"\xaa\xaa"

    def test_load_page_wrong_size_rejected(self):
        with pytest.raises(MemoryError_):
            image().load_page(0, b"short")

    def test_snapshot_segments_is_deep(self):
        mem = image()
        snap = mem.snapshot_segments()
        mem.write(0, b"changed")
        assert snap["data"][:7] == b"\x00" * 7
