"""Ablation E: incremental-audit throughput cost vs detection latency.

The corruption-spread benchmark shows blast radius grows linearly with
detection latency; this ablation prices the other side of that tradeoff.
An incremental auditor checks ``batch`` regions after every TPC-B
operation: larger batches finish a full sweep sooner (lower detection
latency, smaller delete sets) but burn more virtual time per operation.
"""

from __future__ import annotations

import shutil

import pytest

from repro.bench.reporting import render_table
from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb
from repro.storage.database import DBConfig

WORKLOAD = TPCBConfig(
    accounts=1000, tellers=200, branches=20, operations=400, ops_per_txn=50
)

#: regions audited after each operation (0 = no background auditing)
BATCHES = (0, 2, 8, 32)

_cells: dict[int, tuple[float, float]] = {}  # batch -> (ops/sec, sweep ops)


def run_with_audit_batch(tmp_path, batch: int) -> tuple[float, float]:
    path = tmp_path / f"batch{batch}"
    if path.exists():
        shutil.rmtree(path)
    config = DBConfig(
        dir=str(path), scheme="data_cw", scheme_params={"region_size": 4096}
    )
    db = build_tpcb_database(config, WORKLOAD)
    load_tpcb(db, WORKLOAD)
    db.checkpoint()
    db.meter.reset()
    start_ns = db.clock.now_ns
    runner = TPCBWorkload(db, WORKLOAD)
    sweeps = 0
    for _ in range(WORKLOAD.operations):
        runner.run_one()
        if batch:
            db.auditor.run_incremental(batch)
            if db.auditor._cursor == 0:
                sweeps += 1
    runner.finish()
    elapsed_s = (db.clock.now_ns - start_ns) / 1e9
    ops_per_sec = WORKLOAD.operations / elapsed_s
    # Detection latency ~= operations per full sweep.
    sweep_ops = WORKLOAD.operations / sweeps if sweeps else float("inf")
    db.close()
    return ops_per_sec, sweep_ops


@pytest.mark.parametrize("batch", BATCHES)
def test_audit_batch_cell(benchmark, batch, tmp_path):
    result = benchmark.pedantic(
        lambda: run_with_audit_batch(tmp_path, batch), rounds=1, iterations=1
    )
    _cells[batch] = result
    benchmark.extra_info["virtual_ops_per_sec"] = round(result[0], 1)
    benchmark.extra_info["ops_per_full_sweep"] = (
        round(result[1], 1) if result[1] != float("inf") else None
    )


def test_audit_frequency_tradeoff(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_cells) == len(BATCHES)
    baseline = _cells[0][0]
    rows = []
    for batch in BATCHES:
        ops, sweep = _cells[batch]
        slowdown = 100 * (1 - ops / baseline)
        rows.append(
            [
                str(batch),
                f"{ops:,.0f}",
                f"{slowdown:.1f}%",
                "-" if sweep == float("inf") else f"{sweep:,.0f} ops",
            ]
        )
    print()
    print(
        render_table(
            ["Audit batch", "Ops/Sec", "% Slower", "Detection latency"],
            rows,
            title="Ablation E: audit frequency vs throughput",
        )
    )
    # More auditing costs more throughput...
    rates = [_cells[b][0] for b in BATCHES]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    # ...and buys lower detection latency.
    latencies = [_cells[b][1] for b in BATCHES]
    assert all(a >= b for a, b in zip(latencies, latencies[1:]))
    assert latencies[-1] < 100  # a sweep at batch 32 within ~100 ops
