"""Ablation C: deferred vs inline codeword maintenance.

The deferred scheme (Section 4.3 mentions its audit procedure) buffers
per-region deltas instead of updating the codeword table inside every
update window.  Expected shape: cheaper per operation than inline Data
Codeword maintenance, identical detection capability at audit time, but
audits now pay the flush.
"""

from __future__ import annotations

import pytest

from repro import FaultInjector
from repro.bench.harness import SchemeSpec, run_scheme
from repro.bench.tpcb import TPCBWorkload, build_tpcb_database, load_tpcb
from repro.storage.database import DBConfig

_runs: dict[str, object] = {}


@pytest.mark.parametrize(
    "label,scheme",
    [("baseline", "baseline"), ("data_cw", "data_cw"), ("deferred", "deferred")],
)
def test_maintenance_cost(benchmark, label, scheme, workload_config, tmp_path):
    def run():
        return run_scheme(
            SchemeSpec(label, scheme), workload_config, str(tmp_path / "run")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _runs[label] = result
    benchmark.extra_info["virtual_ops_per_sec"] = round(result.ops_per_sec, 1)


def test_deferred_is_cheaper_inline_detection_equal(benchmark, workload_config, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_runs) == 3
    base = _runs["baseline"].ops_per_sec
    inline_pct = 100 * (1 - _runs["data_cw"].ops_per_sec / base)
    deferred_pct = 100 * (1 - _runs["deferred"].ops_per_sec / base)
    print(f"\ninline maintenance {inline_pct:.1f}%, deferred {deferred_pct:.1f}%")
    assert deferred_pct < inline_pct

    # Detection capability is unchanged: a wild write is still caught.
    db = build_tpcb_database(
        DBConfig(dir=str(tmp_path / "detect"), scheme="deferred"),
        workload_config,
    )
    load_tpcb(db, workload_config)
    TPCBWorkload(db, workload_config).run(min(50, workload_config.operations))
    FaultInjector(db, seed=11).wild_write(
        db.table("account").record_address(3) + 16, 8
    )
    report = db.audit()
    assert not report.clean
    db.close()
