"""Table 2: cost of corruption protection on the TPC-B workload.

Runs every row of the paper's Table 2 -- Baseline, Data Codeword, Read
Prechecking at 64 B / 512 B / 8 KB regions, Read Logging with and without
checksums, and Memory Protection -- and checks the *shape* of the result:

* the ordering of schemes by throughput matches the paper;
* every row's slowdown is within a band of the paper's percentage;
* prevention (Precheck-64) costs more than detection (Data CW), tracing
  (ReadLog) sits between prevention variants, hardware protection loses
  to all codeword schemes except 8 KB prechecking.

Wall-clock numbers from pytest-benchmark measure this Python
implementation; the reproduction itself is the virtual-time ops/sec in
``extra_info`` (see DESIGN.md on the cost model).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import TABLE2_ROWS, RunResult, run_scheme
from repro.bench.reporting import render_table2

_results: dict[str, RunResult] = {}

#: Allowed deviation of measured slowdown from the paper's, in points.
SLOWDOWN_BAND = 8.0


@pytest.mark.parametrize("spec", TABLE2_ROWS, ids=lambda s: s.scheme_dir())
def test_table2_row(benchmark, spec, workload_config, tmp_path):
    def run():
        return run_scheme(spec, workload_config, str(tmp_path / "run"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[spec.label] = result
    benchmark.extra_info["virtual_ops_per_sec"] = round(result.ops_per_sec, 1)
    benchmark.extra_info["paper_ops_per_sec"] = spec.paper_ops_per_sec
    benchmark.extra_info["space_overhead_pct"] = round(result.space_overhead_pct, 2)
    assert result.operations == workload_config.operations


def test_table2_shape(benchmark, workload_config):
    """Assemble the full table and verify its shape against the paper."""
    assert len(_results) == len(TABLE2_ROWS), "row benchmarks must run first"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = _results["Baseline"].ops_per_sec
    ordered = []
    for spec in TABLE2_ROWS:
        result = _results[spec.label]
        result.slowdown_pct = 100.0 * (1.0 - result.ops_per_sec / baseline)
        ordered.append(result)
    print()
    print(render_table2(ordered))

    # 1. Every slowdown within the band around the paper's value.
    for result in ordered:
        assert abs(result.slowdown_pct - result.paper_slowdown_pct) <= SLOWDOWN_BAND, (
            f"{result.label}: measured {result.slowdown_pct:.1f}% vs paper "
            f"{result.paper_slowdown_pct:.1f}%"
        )

    # 2. The paper's throughput ordering holds.
    by_label = {r.label: r.ops_per_sec for r in ordered}
    paper_order = [spec.label for spec in TABLE2_ROWS]
    measured_order = sorted(by_label, key=by_label.__getitem__, reverse=True)
    # Adjacent rows within 2% are considered ties (the paper's CW ReadLog
    # and Precheck-512 rows are 4% apart; ours land closer).
    for earlier, later in zip(paper_order, paper_order[1:]):
        assert by_label[earlier] >= by_label[later] * 0.98, (
            f"{earlier} should not be slower than {later}"
        )
    assert measured_order[0] == "Baseline"
    assert measured_order[-1] == "Data CW w/Precheck, 8K byte"

    # 3. The headline claims of Section 5.3.
    detect = _results["Data CW"]
    prevent_small = _results["Data CW w/Precheck, 64 byte"]
    readlog = _results["Data CW w/ReadLog"]
    hardware = _results["Memory Protection"]
    assert detect.slowdown_pct < 12          # "detection is quite cheap"
    assert prevent_small.slowdown_pct < 17   # "prevention cheap with space"
    assert readlog.slowdown_pct < 22         # "about a 17% overhead"
    assert hardware.slowdown_pct > 2 * detect.slowdown_pct  # ">2x codeword"

    # 4. The time/space tradeoff: precheck cost falls as space rises.
    p64 = _results["Data CW w/Precheck, 64 byte"]
    p512 = _results["Data CW w/Precheck, 512 byte"]
    p8k = _results["Data CW w/Precheck, 8K byte"]
    assert p64.ops_per_sec > p512.ops_per_sec > p8k.ops_per_sec
    assert p64.space_overhead_pct > p512.space_overhead_pct > p8k.space_overhead_pct
    assert p64.space_overhead_pct == pytest.approx(6.25)
