"""Table 1 / Figure 1: performance of protect/unprotect across platforms.

Reproduces the paper's microbenchmark -- 2000 pages protected then
unprotected, repeated 50 times -- against the simulated MMU for each
platform profile, and checks the two claims the paper builds on it:

* mprotect throughput varies by more than an order of magnitude across
  contemporary workstations;
* it is uncorrelated with integer performance (the HP 9000 C110 has ~2x
  the SPECint92 of the SPARCstation 20 but < 1/4 the mprotect rate).
"""

from __future__ import annotations

import pytest

from repro.bench.platforms import PLATFORMS, mprotect_microbenchmark
from repro.bench.reporting import render_table1

_measured: dict[str, float] = {}


@pytest.mark.parametrize("name", list(PLATFORMS))
def test_table1_row(benchmark, name):
    profile = PLATFORMS[name]

    def run():
        return mprotect_microbenchmark(profile, pages=2000, reps=5)

    pairs_per_sec = benchmark.pedantic(run, rounds=1, iterations=1)
    _measured[name] = pairs_per_sec
    benchmark.extra_info["pairs_per_sec_virtual"] = round(pairs_per_sec)
    benchmark.extra_info["pairs_per_sec_paper"] = profile.paper_pairs_per_sec
    assert pairs_per_sec == pytest.approx(profile.paper_pairs_per_sec, rel=0.02)


def test_table1_shape(benchmark):
    """Cross-platform variance and the SPECint anomaly."""

    def run():
        return {
            name: mprotect_microbenchmark(profile, pages=200, reps=5)
            for name, profile in PLATFORMS.items()
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    fastest = max(measured.values())
    slowest = min(measured.values())
    assert fastest / slowest > 10  # >10x spread across platforms
    assert measured["HP 9000 C110"] < measured["SPARCstation 20"] / 3
    print()
    print(render_table1(measured))
