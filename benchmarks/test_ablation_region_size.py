"""Ablation A: Read Prechecking region-size sweep.

Section 5.3 reports three points of the time/space tradeoff (64 B, 512 B,
8 KB).  This ablation sweeps the full range and regenerates the implied
figure: per-operation check cost grows with region size while codeword
space overhead shrinks, with the crossover against Memory Protection
(38% slowdown in the paper) falling between 512 B and 8 KB.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SchemeSpec, run_scheme
from repro.bench.reporting import render_table

REGION_SIZES = (32, 64, 128, 256, 512, 1024, 8192)

_sweep: dict[int, object] = {}


@pytest.mark.parametrize("region_size", REGION_SIZES)
def test_precheck_region_size(benchmark, region_size, workload_config, tmp_path):
    spec = SchemeSpec(
        f"Precheck {region_size}B", "precheck", {"region_size": region_size}
    )

    def run():
        return run_scheme(spec, workload_config, str(tmp_path / "run"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _sweep[region_size] = result
    benchmark.extra_info["virtual_ops_per_sec"] = round(result.ops_per_sec, 1)
    benchmark.extra_info["space_overhead_pct"] = round(result.space_overhead_pct, 3)


def test_region_size_tradeoff_shape(benchmark, workload_config, tmp_path):
    assert len(_sweep) == len(REGION_SIZES)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = run_scheme(
        SchemeSpec("Baseline", "baseline"), workload_config, str(tmp_path / "base")
    )
    hardware = run_scheme(
        SchemeSpec("Memory Protection", "hardware"),
        workload_config,
        str(tmp_path / "hw"),
    )

    rows = []
    for size in REGION_SIZES:
        result = _sweep[size]
        slowdown = 100.0 * (1.0 - result.ops_per_sec / baseline.ops_per_sec)
        rows.append(
            [
                f"{size} B",
                f"{result.ops_per_sec:,.0f}",
                f"{slowdown:.1f}%",
                f"{result.space_overhead_pct:.3f}%",
                f"{result.events_per_op('cw_check_word'):,.0f}",
            ]
        )
    print()
    print(
        render_table(
            ["Region", "Ops/Sec", "% Slower", "Space ovh", "check words/op"],
            rows,
            title="Ablation A: Read Prechecking region-size sweep",
        )
    )

    # Time cost monotonically non-increasing throughput with region size.
    rates = [_sweep[size].ops_per_sec for size in REGION_SIZES]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    # Space overhead strictly decreasing.
    overheads = [_sweep[size].space_overhead_pct for size in REGION_SIZES]
    assert all(a > b for a, b in zip(overheads, overheads[1:]))
    # Crossover vs hardware protection falls between 512 B and 8 KB.
    assert _sweep[512].ops_per_sec > hardware.ops_per_sec > _sweep[8192].ops_per_sec
