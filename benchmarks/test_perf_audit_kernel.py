"""Wall-clock microbenchmark of the vectorized audit kernel.

Unlike the virtual-time Table 2 reproduction, this file measures *real*
wall-clock throughput of ``CodewordTable.scan_mismatches`` -- the hottest
loop in the system (it folds the entire image at every checkpoint) -- and
compares the vectorized numpy kernel against the seed's scalar
read-and-fold loop at the paper's three region sizes.

Results are written to ``BENCH_audit.json`` at the repo root so later PRs
have a perf trajectory to regress against (see docs/paper_to_code.md,
"Audit cost & vectorization").
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.regions import CodewordTable
from repro.mem.memory import MemoryImage

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_audit.json")

IMAGE_BYTES = 4 * 1024 * 1024  # the acceptance floor: >= 4 MB
REGION_SIZES = (64, 512, 8192)
#: The acceptance criterion: vectorized full-image scan at 512-byte
#: regions must beat the seed scalar path by at least this factor.
REQUIRED_SPEEDUP_512 = 10.0


def _build_image() -> MemoryImage:
    """A 4 MB image split across segments, filled with non-zero noise."""
    memory = MemoryImage(page_size=8192)
    memory.add_segment("accounts", IMAGE_BYTES // 2, kind="data")
    memory.add_segment("tellers", IMAGE_BYTES // 4, kind="data")
    memory.add_segment("control", IMAGE_BYTES // 4, kind="control")
    rng = np.random.default_rng(0xC0DE)
    memory.restore(0, rng.integers(0, 256, size=memory.size, dtype=np.uint8).tobytes())
    return memory


def _scalar_scan(table: CodewordTable) -> list[int]:
    """The seed implementation: per-region copying read + scalar fold."""
    return [
        region_id
        for region_id in range(table.region_count)
        if table.compute_scalar(region_id) != table.stored(region_id)
    ]


def _best_of(callable_, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _corrupt(memory: MemoryImage, address: int, length: int) -> None:
    """Invert ``length`` bytes: a wild write guaranteed to change content."""
    current = memory.read(address, length)
    memory.poke(address, bytes(b ^ 0xFF for b in current))


@pytest.fixture(scope="module")
def bench_results() -> dict:
    memory = _build_image()
    entries = {}
    for region_size in REGION_SIZES:
        table = CodewordTable(memory, region_size)
        table.rebuild_all()
        # Corrupt a few regions so the scan has real mismatches to report.
        # Inverted spans must not cover an even number of whole words, or
        # the per-word deltas XOR-cancel (the documented blind spot).
        _corrupt(memory, 100, 5)
        _corrupt(memory, memory.size // 2 + 11, 3)
        _corrupt(memory, memory.size - 5, 1)

        scalar_s, scalar_found = _best_of(lambda: _scalar_scan(table), repeats=1)
        vector_s, vector_found = _best_of(table.scan_mismatches, repeats=3)
        assert vector_found == scalar_found
        assert len(vector_found) == 3

        entries[str(region_size)] = {
            "regions": table.region_count,
            "scalar_s": scalar_s,
            "vector_s": vector_s,
            "speedup": scalar_s / vector_s,
            "scalar_regions_per_sec": table.region_count / scalar_s,
            "vector_regions_per_sec": table.region_count / vector_s,
            "corrupt_found": len(vector_found),
        }
    return {
        "version": 1,
        "image_bytes": memory.size,
        "region_sizes": entries,
    }


class TestAuditKernel:
    def test_vectorized_matches_scalar_and_is_10x_at_512(self, bench_results):
        entry = bench_results["region_sizes"]["512"]
        assert entry["speedup"] >= REQUIRED_SPEEDUP_512, (
            f"vectorized scan only {entry['speedup']:.1f}x faster than the "
            f"scalar path (required {REQUIRED_SPEEDUP_512}x)"
        )

    def test_all_region_sizes_faster(self, bench_results):
        for size, entry in bench_results["region_sizes"].items():
            assert entry["speedup"] > 1.0, f"no speedup at {size}-byte regions"

    def test_emit_bench_json(self, bench_results):
        with open(BENCH_PATH, "w") as handle:
            json.dump(bench_results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        assert os.path.exists(BENCH_PATH)
