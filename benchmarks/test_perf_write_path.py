"""Wall-clock benchmark of the batched write path, mmap checkpoints and
background sweeps.  Results land in ``BENCH_write.json`` at the repo root.

* **batched_updates** -- the tentpole gate.  A TPC-B-flavoured stream of
  in-place balance updates driven at the manager level through three
  arms: scalar one-region windows, explicit multi-region windows
  (``begin_updates``), and coalescing windows (``update_batch=N``).
  All three runs must end byte-, meter- and codeword-identical (the
  batch paths are an optimisation, not a semantics change); the
  explicit-window arm must clear ``REQUIRED_SPEEDUP``.  Arms are
  interleaved over ``ROUNDS`` rounds and the best wall time per arm is
  kept, so a background scheduling hiccup cannot sink one arm alone.
* **background_sweep** -- full-sweep escalation latency.  The gate is
  deterministic: launching the off-thread fold must cost less wall time
  than running the same fold inline, since the launch only spawns the
  worker.  p50/p99 audit-call latencies for both modes are recorded.
* **mmap_checkpoint** -- checkpoint wall time with ``image_backing`` of
  heap vs mmap (file-to-file propagation), plus recovery wall time from
  the mmap image.

``WRITE_BENCH_QUICK=1`` shrinks the workload and relaxes the tentpole
gate for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import Database, DBConfig, Field, FieldType, Schema
from repro.wal.records import LogicalUndo

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_write.json")

QUICK = os.environ.get("WRITE_BENCH_QUICK") == "1"
ACCOUNTS = 256
UPDATES = 2_560 if QUICK else 12_800
UPDATE_BATCH = 64
ROUNDS = 2 if QUICK else 3
REGION_SIZE = 512  # Section 5.3 mid-point: 0.78% space overhead
REQUIRED_SPEEDUP = 1.5 if QUICK else 3.0
COALESCED_SPEEDUP = 1.1 if QUICK else 1.5
SWEEP_CAPACITY = 32_768 if QUICK else 262_144  # 1 MiB / 8 MiB data segment
AUDIT_EVERY = 64
CKPT_CAPACITY = 8_192 if QUICK else 65_536

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)


def _make_db(tmp_path, name, capacity=256, accounts=ACCOUNTS, **config_kwargs):
    db = Database(
        DBConfig(
            dir=str(tmp_path / name),
            scheme=config_kwargs.pop("scheme", "data_cw"),
            scheme_params=config_kwargs.pop("scheme_params", {"region_size": 64}),
            **config_kwargs,
        )
    )
    db.create_table("acct", ACCT_SCHEMA, capacity, key_field="id")
    db.start()
    txn = db.begin()
    table = db.table("acct")
    for i in range(accounts):
        table.insert(txn, {"id": i, "balance": 100, "name": f"a{i}"})
    db.commit(txn)
    return db


def _best_of(callable_, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _tpcb_update_mix(count: int):
    """Deterministic TPC-B-ish update stream: per transaction, a stride-37
    walk over the account array (37 is coprime with ACCOUNTS, so the
    slots inside one window are pairwise distinct -- a requirement for
    explicit ``begin_updates`` windows) with the walk's base advancing
    between transactions.  Yields ``(start_index, [slot, ...])`` windows.
    """
    windows = []
    base = 0
    i = 0
    while i < count:
        windows.append(
            (i, [(base + k * 37) % ACCOUNTS for k in range(UPDATE_BATCH)])
        )
        base = (base + 11) % ACCOUNTS
        i += UPDATE_BATCH
    return windows


def _flat_update_mix(count: int):
    """The same update stream flattened to ``(slot, value)`` pairs, for
    workloads that do not care about window boundaries."""
    for i, slots in _tpcb_update_mix(count):
        for j, slot in enumerate(slots):
            yield slot, 100 + i + j


def _drive_updates(db: Database, count: int, *, windows: bool) -> float:
    """Run the update mix at the manager level, one operation (and one
    window scope) per UPDATE_BATCH updates; returns wall seconds.

    ``windows=True`` opens one explicit multi-region window per
    transaction; otherwise each update goes through ``mgr.update`` (one
    scalar window each, or a coalescing window under ``update_batch``).
    """
    mgr = db.manager
    table = db.table("acct")
    addresses = [table.record_address(slot) + 8 for slot in range(ACCOUNTS)]
    mix = _tpcb_update_mix(count)
    start = time.perf_counter()
    for i, slots in mix:
        txn = db.begin()
        mgr.begin_operation(txn, "acct:mix")
        if windows:
            mgr.begin_updates(txn, [(addresses[s], 8) for s in slots])
            for j, slot in enumerate(slots):
                mgr.write(txn, addresses[slot], (100 + i + j).to_bytes(8, "little"))
            mgr.end_update(txn)
        else:
            for j, slot in enumerate(slots):
                mgr.update(txn, addresses[slot], (100 + i + j).to_bytes(8, "little"))
        mgr.commit_operation(txn, LogicalUndo("noop"))
        db.commit(txn)
    return time.perf_counter() - start


# --------------------------------------------------------------------------
# Benchmark fixtures
# --------------------------------------------------------------------------


_ARMS = (
    # (label, update_batch config, explicit windows?)
    ("scalar", 1, False),
    ("batched", 1, True),
    ("coalesced", UPDATE_BATCH, False),
)


@pytest.fixture(scope="module")
def batched_results(tmp_path_factory) -> dict:
    base = tmp_path_factory.mktemp("writebench")
    entries = {}
    states = {}
    walls = {label: float("inf") for label, _batch, _win in _ARMS}
    for round_no in range(ROUNDS):
        for label, batch, windows in _ARMS:
            db = _make_db(
                base,
                f"{label}{round_no}",
                scheme_params={"region_size": REGION_SIZE},
                update_batch=batch,
            )
            wall_s = _drive_updates(db, UPDATES, windows=windows)
            walls[label] = min(walls[label], wall_s)
            if round_no == 0:
                report = db.audit()
                assert report.clean
                states[label] = (
                    db.memory.snapshot_segments(),
                    db.scheme.codeword_table._codewords.tolist(),
                    dict(db.meter.counts),
                    db.meter.clock.now_ns,
                )
            db.close()
    # The batch paths are an optimisation, not a semantics change.
    assert states["batched"] == states["scalar"]
    assert states["coalesced"] == states["scalar"]
    for label, batch, windows in _ARMS:
        entries[label] = {
            "updates": UPDATES,
            "update_batch": batch,
            "explicit_windows": windows,
            "wall_s": walls[label],
            "updates_per_sec": UPDATES / walls[label],
        }
    entries["speedup"] = walls["scalar"] / walls["batched"]
    entries["coalesced_speedup"] = walls["scalar"] / walls["coalesced"]
    return entries


@pytest.fixture(scope="module")
def sweep_results(tmp_path_factory) -> dict:
    base = tmp_path_factory.mktemp("sweepbench")
    entries = {}
    for mode, background in (("inline", False), ("background", True)):
        db = _make_db(
            base,
            mode,
            capacity=SWEEP_CAPACITY,
            audit_mode="incremental",
            full_sweep_every=4,
            background_sweeps=background,
        )
        # p50/p99 of db.audit() calls over an update mix with the
        # configured escalation cadence.
        mgr = db.manager
        table = db.table("acct")
        addresses = [table.record_address(slot) + 8 for slot in range(ACCOUNTS)]
        latencies = []
        for i, (slot, value) in enumerate(_flat_update_mix(UPDATES // 8)):
            txn = db.begin()
            mgr.begin_operation(txn, "acct:mix")
            mgr.update(txn, addresses[slot], value.to_bytes(8, "little"))
            mgr.commit_operation(txn, LogicalUndo("noop"))
            db.commit(txn)
            if i % AUDIT_EVERY == AUDIT_EVERY - 1:
                start = time.perf_counter()
                report = db.audit()
                latencies.append(time.perf_counter() - start)
                assert report.clean
        db.auditor.abandon_background_sweep()

        # Deterministic escalation comparison on the quiescent image.
        if background:
            start = time.perf_counter()
            assert db.auditor.start_background_sweep()
            escalation_s = time.perf_counter() - start
            join_s, report = _best_of(db.auditor.join_background_sweep, 1)
        else:
            escalation_s, report = _best_of(db.auditor.run, 3)
            join_s = 0.0
        assert report.clean
        entries[mode] = {
            "image_bytes": db.memory.size,
            "regions": db.scheme.codeword_table.region_count,
            "audit_calls": len(latencies),
            "audit_p50_s": _percentile(latencies, 0.50),
            "audit_p99_s": _percentile(latencies, 0.99),
            "escalation_call_s": escalation_s,
            "join_s": join_s,
        }
        db.close()
    return entries


@pytest.fixture(scope="module")
def mmap_results(tmp_path_factory) -> dict:
    base = tmp_path_factory.mktemp("ckptbench")
    entries = {}
    for backing in ("heap", "mmap"):
        db = _make_db(base, backing, capacity=CKPT_CAPACITY, image_backing=backing)
        mgr = db.manager
        table = db.table("acct")
        addresses = [table.record_address(slot) + 8 for slot in range(ACCOUNTS)]
        for slot, value in _flat_update_mix(512):
            txn = db.begin()
            mgr.begin_operation(txn, "acct:mix")
            mgr.update(txn, addresses[slot], value.to_bytes(8, "little"))
            mgr.commit_operation(txn, LogicalUndo("noop"))
            db.commit(txn)
        ckpt_s, result = _best_of(db.checkpoint, 2 if QUICK else 3)
        assert result.certified
        db.crash()
        start = time.perf_counter()
        db2, _report = Database.recover(db.config)
        recover_s = time.perf_counter() - start
        assert db2.audit().clean
        db2.close()
        entries[backing] = {
            "image_bytes": CKPT_CAPACITY * ACCT_SCHEMA.record_size,
            "pages_written": result.pages_written,
            "checkpoint_s": ckpt_s,
            "recover_s": recover_s,
        }
    return entries


# --------------------------------------------------------------------------
# Gates + emission
# --------------------------------------------------------------------------


class TestWritePath:
    def test_batched_updates_speedup(self, batched_results):
        assert batched_results["speedup"] >= REQUIRED_SPEEDUP, (
            f"batched update windows only {batched_results['speedup']:.2f}x "
            f"faster than scalar windows (required {REQUIRED_SPEEDUP}x)"
        )

    def test_coalesced_updates_speedup(self, batched_results):
        # update_batch coalescing pays extra bookkeeping the explicit
        # window arm does not (per-extension undo capture and scheme
        # hooks), so its bar is lower -- but it must still clearly beat
        # scalar windows.
        assert batched_results["coalesced_speedup"] >= COALESCED_SPEEDUP, (
            f"coalescing windows only {batched_results['coalesced_speedup']:.2f}x "
            f"faster than scalar windows (required {COALESCED_SPEEDUP}x)"
        )

    def test_background_escalation_cheaper_than_inline_sweep(self, sweep_results):
        # Launching the off-thread fold must be cheaper than folding the
        # whole image inline -- the launch only spawns the worker and
        # serves a dirty pass.
        assert (
            sweep_results["background"]["escalation_call_s"]
            < sweep_results["inline"]["escalation_call_s"]
        )

    def test_mmap_checkpoint_completes(self, mmap_results):
        for backing, entry in mmap_results.items():
            assert entry["checkpoint_s"] > 0.0, backing
            assert entry["pages_written"] >= 0, backing

    def test_emit_bench_json(self, batched_results, sweep_results, mmap_results):
        payload = {
            "version": 1,
            "quick": QUICK,
            "batched_updates": batched_results,
            "background_sweep": sweep_results,
            "mmap_checkpoint": mmap_results,
        }
        with open(BENCH_PATH, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        assert os.path.exists(BENCH_PATH)
