"""Ablation D: scheme overhead vs read fraction (extension).

Sweeps the read/write mix.  Because an update is a read-modify-write,
*every* operation performs prescribed reads, so per-read scheme overhead
(Read Prechecking, Read Logging) is nearly flat across the mix -- while
per-update scheme overhead (Data Codeword maintenance, Hardware
Protection's expose/cover syscalls) collapses as reads displace writes.
The result is a crossover: hardware protection is the most expensive
scheme on a write-heavy mix but undercuts read logging on a read-heavy
one.  This quantifies the paper's advice that users should "make their
own safety/performance tradeoff".
"""

from __future__ import annotations

import pytest

from repro.bench.mixes import MixConfig, run_mix
from repro.bench.reporting import render_table
from repro.storage.database import DBConfig

FRACTIONS = (0.1, 0.5, 0.9)
SCHEMES = {
    "baseline": {},
    "data_cw": {},
    "precheck": {"region_size": 64},
    "read_logging": {},
    "hardware": {},
}

_grid: dict[tuple[str, float], float] = {}


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("scheme", list(SCHEMES))
def test_mix_cell(benchmark, scheme, fraction, tmp_path):
    mix = MixConfig(read_fraction=fraction)
    config = DBConfig(
        dir=str(tmp_path / "db"), scheme=scheme, scheme_params=dict(SCHEMES[scheme])
    )

    def run():
        return run_mix(config, mix)

    ops_per_sec, _events = benchmark.pedantic(run, rounds=1, iterations=1)
    _grid[(scheme, fraction)] = ops_per_sec
    benchmark.extra_info["virtual_ops_per_sec"] = round(ops_per_sec, 1)


def test_read_mix_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_grid) == len(SCHEMES) * len(FRACTIONS)

    def overhead(scheme: str, fraction: float) -> float:
        base = _grid[("baseline", fraction)]
        return 100.0 * (1.0 - _grid[(scheme, fraction)] / base)

    rows = []
    for scheme in SCHEMES:
        if scheme == "baseline":
            continue
        rows.append(
            [scheme] + [f"{overhead(scheme, f):.1f}%" for f in FRACTIONS]
        )
    print()
    print(
        render_table(
            ["Scheme"] + [f"{int(f * 100)}% reads" for f in FRACTIONS],
            rows,
            title="Ablation D: slowdown vs read fraction",
        )
    )

    # Every scheme gets cheaper as writes disappear (updates carry the
    # most protection work under every scheme)...
    for scheme in ("precheck", "read_logging", "data_cw", "hardware"):
        assert overhead(scheme, 0.9) < overhead(scheme, 0.1), scheme
    # ...but per-update schemes collapse much faster than per-read ones.
    def retention(scheme: str) -> float:
        return overhead(scheme, 0.9) / overhead(scheme, 0.1)

    assert retention("precheck") > retention("hardware")
    assert retention("read_logging") > retention("data_cw")
    # The crossover: hardware protection is the most expensive scheme on
    # a write-heavy mix, yet beats read logging on a read-heavy one.
    assert overhead("hardware", 0.1) > overhead("read_logging", 0.1)
    assert overhead("hardware", 0.9) < overhead("read_logging", 0.9)
