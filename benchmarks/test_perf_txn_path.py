"""Wall-clock benchmark of the transaction write path.

Three measurements, written to ``BENCH_txn.json`` at the repo root:

* **log_lifecycle** -- the tentpole gate.  A TPC-B-flavoured stream of
  transactions (begin, a few updates, commit) driven through the stable
  log's full lifecycle: batched append + flush every round, periodic
  ``stable_record_count`` + ``truncate_before`` reclamation, and a final
  recovery-style scan.  The baseline is the seed implementation copied
  inline below: per-record ``bytes``-join encoding, per-record meter
  charges, O(file) decode -> re-encode truncation and O(file) record
  counting -- exactly the pathologies the batched codec, byte-splice
  truncate and cached counter remove.  Required speedup: >= 5x.
* **codec** -- pure encode/decode subscores (no file I/O), gated only at
  parity (> 1x): frame building is cheap relative to CPython dataclass
  construction, so most of the lifecycle win comes from batching and the
  O(file) -> O(1)/O(suffix) rewrites, not raw codec arithmetic.
* **commit_path / incremental_audit** -- commits/sec under group-commit
  windows of 1 vs 8, and audit latency vs dirty-set size against a full
  sweep (virtual ns makes the scaling deterministic; wall time is
  reported for flavour).
* **lock_release** -- the serving-era fast path.  With many concurrent
  sessions' grants resident in one lock table, releasing a transaction
  must be O(locks held), not O(lock table).  The baseline is the
  pre-index release copied inline below (full-table scan + per-key list
  rebuild); the gate requires the reverse-indexed release to beat it.

``TXN_BENCH_QUICK=1`` shrinks the workload and relaxes the lifecycle
gate for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib

import pytest

from repro import Database, DBConfig, Field, FieldType, Schema
from repro.sim.clock import Meter, VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.txn.latches import Latch
from repro.txn.locks import LockManager, LockMode
from repro.wal.records import (
    RecordType,
    TxnBeginRecord,
    TxnCommitRecord,
    UpdateRecord,
    encode_into,
    iter_records,
)
from repro.wal.system_log import SystemLog

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_txn.json")

QUICK = os.environ.get("TXN_BENCH_QUICK") == "1"
ROUNDS = 12 if QUICK else 120
TXNS_PER_ROUND = 10 if QUICK else 30
UPDATES_PER_TXN = 3
RECLAIM_EVERY = 4 if QUICK else 8
COMMIT_TXNS = 80 if QUICK else 400
REQUIRED_LIFECYCLE_SPEEDUP = 2.0 if QUICK else 5.0
REQUIRED_CODEC_SPEEDUP = 1.0

_LSN = struct.Struct("<Q")
_OPT_NONE = 0xFFFFFFFFFFFFFFFF

ACCT_SCHEMA = Schema(
    [
        Field("id", FieldType.INT64),
        Field("balance", FieldType.INT64),
        Field("name", FieldType.CHAR, 16),
    ]
)

# --------------------------------------------------------------------------
# Seed baseline, copied inline: per-record codec and the original
# SystemLog write/scan/truncate/count logic (restricted to the record
# types the workload uses, with the original chain order and copies).
# --------------------------------------------------------------------------


def _seed_encode(record) -> bytes:
    if isinstance(record, UpdateRecord):
        rtype = RecordType.UPDATE
        payload = (
            struct.pack("<QqI", record.txn_id, record.address, len(record.image))
            + struct.pack(
                "<Q",
                _OPT_NONE if record.old_checksum is None else record.old_checksum,
            )
            + record.image
        )
    elif isinstance(record, TxnBeginRecord):
        rtype = RecordType.TXN_BEGIN
        payload = struct.pack("<QB", record.txn_id, int(record.is_recovery))
    elif isinstance(record, TxnCommitRecord):
        rtype = RecordType.TXN_COMMIT
        payload = struct.pack("<Q", record.txn_id)
    else:  # pragma: no cover - workload only uses the three types above
        raise TypeError(type(record).__name__)
    body = bytes([rtype]) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack("<I", len(body)) + body + struct.pack("<I", crc)


def _seed_decode(data: bytes, offset: int):
    (body_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    body = data[offset : offset + body_len]
    offset += body_len
    (crc,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ValueError("crc")
    rtype = RecordType(body[0])
    payload = body[1:]
    if rtype == RecordType.UPDATE:
        txn_id, address, image_len = struct.unpack_from("<QqI", payload, 0)
        (raw,) = struct.unpack_from("<Q", payload, 20)
        image = bytes(payload[28 : 28 + image_len])
        return UpdateRecord(txn_id, address, image, None if raw == _OPT_NONE else raw), offset
    if rtype == RecordType.TXN_BEGIN:
        txn_id, is_recovery = struct.unpack_from("<QB", payload, 0)
        return TxnBeginRecord(txn_id, bool(is_recovery)), offset
    txn_id = struct.unpack_from("<Q", payload, 0)[0]
    return TxnCommitRecord(txn_id), offset


class SeedLog:
    """The pre-batching SystemLog, inlined as the lifecycle baseline."""

    def __init__(self, path: str, meter: Meter) -> None:
        self.path = path
        self.meter = meter
        self.latch = Latch("seed_log")
        self.tail = []
        self.next_lsn = 0
        self.end_of_stable_lsn = 0
        self._file = open(path, "ab")

    def extend(self, records) -> None:
        for record in records:
            lsn = self.next_lsn
            self.next_lsn += 1
            self.tail.append((lsn, record))
            self.meter.charge("log_record")
            self.meter.charge("log_byte", record.approx_size())

    def flush(self) -> int:
        with self.latch.exclusive():
            self.meter.charge("latch_pair")
            if not self.tail:
                return self.end_of_stable_lsn
            self.meter.charge("flush_fixed")
            chunks = []
            byte_count = 0
            for lsn, record in self.tail:
                encoded = _LSN.pack(lsn) + _seed_encode(record)
                chunks.append(encoded)
                byte_count += len(encoded)
            self._file.write(b"".join(chunks))
            self._file.flush()
            self.meter.charge("flush_byte", byte_count)
            self.end_of_stable_lsn = self.tail[-1][0] + 1
            self.tail.clear()
            return self.end_of_stable_lsn

    def scan(self, from_lsn: int = 0):
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            (lsn,) = _LSN.unpack_from(data, offset)
            record, offset = _seed_decode(data, offset + 8)
            if lsn >= from_lsn:
                yield lsn, record

    def truncate_before(self, lsn: int) -> int:
        kept = []
        removed = 0
        for record_lsn, record in self.scan(0):
            if record_lsn < lsn:
                removed += 1
            else:
                kept.append(_LSN.pack(record_lsn) + _seed_encode(record))
        if removed == 0:
            return 0
        self._file.close()
        with open(self.path, "wb") as handle:
            handle.write(b"".join(kept))
        self._file = open(self.path, "ab")
        return removed

    @property
    def stable_record_count(self) -> int:
        return sum(1 for _ in self.scan())

    def close(self) -> None:
        self._file.close()


class SeedReleaseLockManager(LockManager):
    """The pre-index release, inlined as the lock-table baseline.

    Acquire/conflict logic is inherited; only the release paths revert
    to the original full-table scan with per-key list rebuilds.  The
    reverse index is kept consistent so inherited invariants hold, but
    the scans below never consult it -- exactly the seed cost model.
    """

    def release_operation(self, txn_id: int, op_id: int) -> None:
        with self._mutex:
            for key in list(self._table):
                grants = self._table[key]
                grants[:] = [
                    g
                    for g in grants
                    if not (
                        g.txn_id == txn_id and g.duration == "op" and g.op_id == op_id
                    )
                ]
                if not grants:
                    del self._table[key]
                    self._txn_keys.get(txn_id, set()).discard(key)

    def release_all(self, txn_id: int) -> None:
        with self._mutex:
            for key in list(self._table):
                grants = self._table[key]
                grants[:] = [g for g in grants if g.txn_id != txn_id]
                if not grants:
                    del self._table[key]
            self._txn_keys.pop(txn_id, None)


# --------------------------------------------------------------------------
# Workload
# --------------------------------------------------------------------------


def _txn_records(txn_id: int):
    image = (txn_id % 251).to_bytes(1, "little") * 32
    records = [TxnBeginRecord(txn_id)]
    for i in range(UPDATES_PER_TXN):
        records.append(UpdateRecord(txn_id, 4096 * i + (txn_id % 64) * 32, image))
    records.append(TxnCommitRecord(txn_id))
    return records


def _run_lifecycle(log) -> int:
    """Drive one full stable-log lifecycle; returns records seen by the
    final recovery-style scan (identical for both implementations)."""
    txn_id = 0
    for round_no in range(ROUNDS):
        batch = []
        for _ in range(TXNS_PER_ROUND):
            batch.extend(_txn_records(txn_id))
            txn_id += 1
        log.extend(batch)
        log.flush()
        if round_no % RECLAIM_EVERY == RECLAIM_EVERY - 1:
            _ = log.stable_record_count  # monitoring probe, O(file) in seed
            log.truncate_before(log.next_lsn // 2)  # checkpoint reclamation
    return sum(1 for _ in log.scan())


def _best_of(callable_, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _make_meter() -> Meter:
    return Meter(VirtualClock(), DEFAULT_COSTS)


def _make_db(tmp_path, name, **config_kwargs) -> Database:
    db = Database(DBConfig(dir=str(tmp_path / name), **config_kwargs))
    db.create_table("acct", ACCT_SCHEMA, 256, key_field="id")
    db.start()
    txn = db.begin()
    table = db.table("acct")
    for i in range(64):
        table.insert(txn, {"id": i, "balance": 100, "name": f"a{i}"})
    db.commit(txn)
    return db


# --------------------------------------------------------------------------
# Benchmark fixtures
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def lifecycle_results(tmp_path_factory) -> dict:
    base = tmp_path_factory.mktemp("txnbench")

    def seed_run():
        log = SeedLog(str(base / "seed.log"), _make_meter())
        try:
            return _run_lifecycle(log)
        finally:
            log.close()
            os.remove(log.path)

    def batched_run():
        log = SystemLog(str(base / "batched.log"), _make_meter())
        try:
            return _run_lifecycle(log)
        finally:
            log.close()
            os.remove(log.path)

    repeats = 1 if QUICK else 2
    seed_s, seed_count = _best_of(seed_run, repeats)
    batched_s, batched_count = _best_of(batched_run, repeats)
    assert seed_count == batched_count  # same surviving suffix either way
    records = ROUNDS * TXNS_PER_ROUND * (UPDATES_PER_TXN + 2)
    return {
        "rounds": ROUNDS,
        "records_appended": records,
        "reclaim_every": RECLAIM_EVERY,
        "seed_s": seed_s,
        "batched_s": batched_s,
        "speedup": seed_s / batched_s,
        "final_scan_records": batched_count,
    }


@pytest.fixture(scope="module")
def codec_results() -> dict:
    records = []
    for txn_id in range(2000 if QUICK else 8000):
        records.extend(_txn_records(txn_id))

    def seed_encode_all():
        return b"".join(_seed_encode(r) for r in records)

    def batched_encode_all():
        buf = bytearray()
        for record in records:
            encode_into(record, buf)
        return buf

    repeats = 5 if QUICK else 9
    encode_seed_s, blob = _best_of(seed_encode_all, repeats)
    encode_new_s, buf = _best_of(batched_encode_all, repeats)
    assert bytes(buf) == blob  # byte-identical framing

    def seed_decode_all():
        out = []
        offset = 0
        while offset < len(blob):
            record, offset = _seed_decode(blob, offset)
            out.append(record)
        return out

    def batched_decode_all():
        return list(iter_records(buf))

    decode_seed_s, seed_records = _best_of(seed_decode_all, repeats)
    decode_new_s, new_records = _best_of(batched_decode_all, repeats)
    assert seed_records == new_records
    return {
        "records": len(records),
        "bytes": len(blob),
        "encode": {
            "seed_s": encode_seed_s,
            "batched_s": encode_new_s,
            "speedup": encode_seed_s / encode_new_s,
        },
        "decode": {
            "seed_s": decode_seed_s,
            "batched_s": decode_new_s,
            "speedup": decode_seed_s / decode_new_s,
        },
    }


@pytest.fixture(scope="module")
def commit_results(tmp_path_factory) -> dict:
    base = tmp_path_factory.mktemp("commitbench")
    entries = {}
    for window in (1, 8):
        db = _make_db(base, f"gc{window}", scheme="baseline", group_commit_size=window)
        table = db.table("acct")
        db.manager.flush_commits()
        flush_before = db.meter.counts["flush_fixed"]

        start = time.perf_counter()
        for i in range(COMMIT_TXNS):
            txn = db.begin()
            table.update(txn, i % 64, {"balance": 100 + i})
            db.commit(txn)
        db.manager.flush_commits()
        wall_s = time.perf_counter() - start

        entries[f"group_commit_{window}"] = {
            "txns": COMMIT_TXNS,
            "wall_s": wall_s,
            "commits_per_sec": COMMIT_TXNS / wall_s,
            "flush_fixed": db.meter.counts["flush_fixed"] - flush_before,
        }
        db.close()
    return entries


LOCK_BG_SESSIONS = 16 if QUICK else 64
LOCK_KEYS_PER_SESSION = 4
LOCK_HOT_KEYS = 4
LOCK_CYCLES = 200 if QUICK else 1000
REQUIRED_LOCK_RELEASE_SPEEDUP = 1.2 if QUICK else 2.0


@pytest.fixture(scope="module")
def lock_release_results() -> dict:
    """Time the hot transaction's release cycle against a populated table.

    ``LOCK_BG_SESSIONS`` resident sessions each hold
    ``LOCK_KEYS_PER_SESSION`` private txn-duration grants -- the steady
    state of the concurrent serving front-end.  The hot transaction then
    runs acquire/release cycles; the seed baseline pays O(table) per
    release, the indexed path O(locks held).
    """

    def populate(locks) -> None:
        for session in range(LOCK_BG_SESSIONS):
            txn_id = 1000 + session
            for k in range(LOCK_KEYS_PER_SESSION):
                locks.acquire(txn_id, f"bg:{session}:{k}", LockMode.EXCLUSIVE)

    def cycle(locks) -> None:
        hot = 7
        for i in range(LOCK_CYCLES):
            for k in range(LOCK_HOT_KEYS):
                locks.acquire(hot, f"hot:{k}", LockMode.EXCLUSIVE)
            locks.acquire(hot, "hot:op", LockMode.EXCLUSIVE, duration="op", op_id=i)
            locks.release_operation(hot, i)
            locks.release_all(hot)

    entries = {}
    for label, factory in (("seed", SeedReleaseLockManager), ("indexed", LockManager)):
        locks = factory()
        populate(locks)
        wall_s, _ = _best_of(lambda locks=locks: cycle(locks), 3)
        # The baseline must not have shed the resident grants; otherwise
        # it timed an empty table.
        assert len(locks._table) == LOCK_BG_SESSIONS * LOCK_KEYS_PER_SESSION
        entries[label] = wall_s
    return {
        "background_sessions": LOCK_BG_SESSIONS,
        "resident_grants": LOCK_BG_SESSIONS * LOCK_KEYS_PER_SESSION,
        "hot_keys": LOCK_HOT_KEYS,
        "cycles": LOCK_CYCLES,
        "seed_s": entries["seed"],
        "indexed_s": entries["indexed"],
        "speedup": entries["seed"] / entries["indexed"],
    }


@pytest.fixture(scope="module")
def audit_results(tmp_path_factory) -> dict:
    db = _make_db(
        tmp_path_factory.mktemp("auditbench"),
        "adb",
        scheme="data_cw",
        scheme_params={"region_size": 256},
        audit_mode="incremental",
        full_sweep_every=10**6,
    )
    maintainer = db.scheme.maintainer
    table = db.scheme.codeword_table

    def timed_audit(dirty_count):
        maintainer.clear_dirty()
        maintainer.dirty_regions.update(range(dirty_count))
        db.auditor._dirty_audits_since_sweep = 0
        virtual_before = db.meter.clock.now_ns

        def run():
            maintainer.dirty_regions.update(range(dirty_count))
            return db.audit()

        wall_s, report = _best_of(run, 3)
        assert report.clean
        return {
            "dirty_regions": dirty_count,
            "regions_checked": report.regions_checked,
            "wall_s": wall_s,
            "virtual_ns": db.meter.clock.now_ns - virtual_before,
        }

    dirty_entries = [timed_audit(n) for n in (1, 8, 64) if n <= table.region_count]

    virtual_before = db.meter.clock.now_ns
    full_wall_s, full_report = _best_of(lambda: db.auditor.run(), 3)
    results = {
        "region_count": table.region_count,
        "dirty": dirty_entries,
        "full_sweep": {
            "regions_checked": full_report.regions_checked,
            "wall_s": full_wall_s,
            "virtual_ns": db.meter.clock.now_ns - virtual_before,
        },
    }
    db.close()
    return results


# --------------------------------------------------------------------------
# Gates + emission
# --------------------------------------------------------------------------


class TestTxnPath:
    def test_lifecycle_speedup(self, lifecycle_results):
        assert lifecycle_results["speedup"] >= REQUIRED_LIFECYCLE_SPEEDUP, (
            f"stable-log lifecycle only "
            f"{lifecycle_results['speedup']:.1f}x faster than the seed "
            f"implementation (required {REQUIRED_LIFECYCLE_SPEEDUP}x)"
        )

    def test_codec_not_slower_than_seed(self, codec_results):
        for phase in ("encode", "decode"):
            assert codec_results[phase]["speedup"] > REQUIRED_CODEC_SPEEDUP, (
                f"batched {phase} slower than the seed codec: "
                f"{codec_results[phase]['speedup']:.2f}x"
            )

    def test_group_commit_amortizes_flushes(self, commit_results):
        assert (
            commit_results["group_commit_8"]["flush_fixed"]
            < commit_results["group_commit_1"]["flush_fixed"]
        )

    def test_lock_release_is_o_locks_held(self, lock_release_results):
        assert lock_release_results["speedup"] >= REQUIRED_LOCK_RELEASE_SPEEDUP, (
            f"indexed lock release only "
            f"{lock_release_results['speedup']:.2f}x faster than the "
            f"full-table-scan seed against "
            f"{lock_release_results['resident_grants']} resident grants "
            f"(required {REQUIRED_LOCK_RELEASE_SPEEDUP}x)"
        )

    def test_incremental_audit_scales_with_dirty_set(self, audit_results):
        costs = [e["virtual_ns"] for e in audit_results["dirty"]]
        assert costs == sorted(costs)  # audit cost grows with the dirty set
        assert costs[-1] < audit_results["full_sweep"]["virtual_ns"]

    def test_emit_bench_json(
        self,
        lifecycle_results,
        codec_results,
        commit_results,
        audit_results,
        lock_release_results,
    ):
        payload = {
            "version": 1,
            "quick": QUICK,
            "log_lifecycle": lifecycle_results,
            "codec": codec_results,
            "commit_path": commit_results,
            "incremental_audit": audit_results,
            "lock_release": lock_release_results,
        }
        with open(BENCH_PATH, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        assert os.path.exists(BENCH_PATH)
