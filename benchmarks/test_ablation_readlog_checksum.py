"""Ablation B: checksums in read log records.

Two effects of the Section 4.3 extension are measured:

* cost -- logging a checksum of every value read (and of every value
  overwritten) adds roughly 5 points of slowdown on top of plain read
  logging (paper: 17.1% -> 22.4%);
* precision -- with checksums, recovery is view-consistent and deletes
  only transactions that actually read corrupted values; without them,
  the region-granular CorruptDataTable conservatively recruits every
  reader of a corrupt region, so the delete set can only grow.
"""

from __future__ import annotations

import shutil

import pytest

from repro import Database, DBConfig, FaultInjector
from repro.bench.harness import SchemeSpec, run_scheme
from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb

_cost: dict[str, object] = {}


@pytest.mark.parametrize(
    "label,scheme",
    [
        ("baseline", "baseline"),
        ("read_logging", "read_logging"),
        ("cw_read_logging", "cw_read_logging"),
    ],
)
def test_readlog_cost(benchmark, label, scheme, workload_config, tmp_path):
    def run():
        return run_scheme(
            SchemeSpec(label, scheme), workload_config, str(tmp_path / "run")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _cost[label] = result
    benchmark.extra_info["virtual_ops_per_sec"] = round(result.ops_per_sec, 1)


def test_checksum_cost_delta_matches_paper(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_cost) == 3
    base = _cost["baseline"].ops_per_sec
    plain = 100 * (1 - _cost["read_logging"].ops_per_sec / base)
    checksummed = 100 * (1 - _cost["cw_read_logging"].ops_per_sec / base)
    delta = checksummed - plain
    print(f"\nreadlog {plain:.1f}%, cw readlog {checksummed:.1f}%, delta {delta:.1f}%")
    assert 2.0 <= delta <= 9.0  # paper: 5.3 points


def _corruption_episode(tmp_path, scheme: str, sub: str):
    """TPC-B run with one wild write mid-stream, then corruption recovery."""
    workload = TPCBConfig(
        accounts=400, tellers=80, branches=8, operations=120, ops_per_txn=10
    )
    path = tmp_path / sub
    if path.exists():
        shutil.rmtree(path)
    config = DBConfig(dir=str(path), scheme=scheme)
    db = build_tpcb_database(config, workload)
    load_tpcb(db, workload)
    db.checkpoint()
    runner = TPCBWorkload(db, workload)
    runner.run(40)
    # A branch record: every operation updates one of only 8 branches, so
    # the corruption is certainly read-and-carried by later transactions.
    branch = db.table("branch")
    FaultInjector(db, seed=5).wild_write(branch.record_address(3) + 8, 8)
    runner.run(workload.operations - 40)
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)
    db2, recovery = Database.recover(config)
    db2.close()
    return recovery


def test_recovery_precision(benchmark, tmp_path):
    conflict = _corruption_episode(tmp_path, "read_logging", "conflict")

    def run_view():
        return _corruption_episode(tmp_path, "cw_read_logging", "view")

    view = benchmark.pedantic(run_view, rounds=1, iterations=1)
    print(
        f"\nconflict-consistent deleted {len(conflict.deleted_set)} committed "
        f"txns; view-consistent deleted {len(view.deleted_set)}"
    )
    assert view.mode == "delete-transaction-view"
    assert conflict.mode == "delete-transaction"
    # Checksums can only shrink the delete set.
    assert len(view.deleted_set) <= len(conflict.deleted_set)
    # Both traced at least the transactions that read the corrupt account.
    assert view.deleted_set or view.rolled_back is not None
