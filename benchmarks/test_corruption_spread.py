"""Corruption spread vs detection latency (extension).

Section 4.1: "We do not attempt to analyze the speed at which corruption
may spread, since it is dependent on the details of the application, the
DBMS implementation, and the initially corrupted data."  For *this*
application (TPC-B) we can: corrupt a branch record, keep running for a
varying number of operations before the audit fires, and measure how many
committed transactions the delete-transaction recovery must remove.

Expected shape: the delete set grows (weakly) monotonically with
detection latency, and audit frequency is therefore the operator's lever
on blast radius -- the quantitative argument for cheap, frequent audits.
"""

from __future__ import annotations

import shutil

import pytest

from repro import Database, DBConfig, FaultInjector
from repro.bench.reporting import render_table
from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb

WORKLOAD = TPCBConfig(
    accounts=400, tellers=80, branches=8, operations=400, ops_per_txn=10
)

LATENCIES = (0, 20, 60, 150, 300)

_spread: dict[int, int] = {}


def episode(tmp_path, latency: int) -> int:
    """Run, corrupt a branch, detect after ``latency`` ops; deleted count."""
    path = tmp_path / f"lat{latency}"
    if path.exists():
        shutil.rmtree(path)
    config = DBConfig(dir=str(path), scheme="cw_read_logging")
    db = build_tpcb_database(config, WORKLOAD)
    load_tpcb(db, WORKLOAD)
    db.checkpoint()
    runner = TPCBWorkload(db, WORKLOAD)
    runner.run(50)
    FaultInjector(db, seed=31).wild_write(db.table("branch").record_address(2) + 8, 8)
    runner.run(latency)
    runner.finish()
    report = db.audit()
    assert not report.clean
    db.crash_with_corruption(report)
    db2, recovery = Database.recover(config)
    db2.close()
    return len(recovery.deleted_set)


@pytest.mark.parametrize("latency", LATENCIES)
def test_spread_at_latency(benchmark, latency, tmp_path):
    deleted = benchmark.pedantic(
        lambda: episode(tmp_path, latency), rounds=1, iterations=1
    )
    _spread[latency] = deleted
    benchmark.extra_info["deleted_committed_txns"] = deleted


def test_spread_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_spread) == len(LATENCIES)
    rows = [
        [f"{latency} ops", str(_spread[latency])] for latency in LATENCIES
    ]
    print()
    print(
        render_table(
            ["Detection latency", "Committed txns deleted"],
            rows,
            title="Corruption spread vs detection latency",
        )
    )
    counts = [_spread[latency] for latency in LATENCIES]
    # Weakly monotone growth with latency...
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    # ...with real spread by the longest latency (a corrupt branch is
    # touched by ~1/8 of operations).
    assert counts[-1] > counts[0]
    assert counts[-1] >= 10
