"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` scales the TPC-B database and operation count
(default 0.02 -> 2,000 accounts / 1,000 operations, which reproduces the
Table 2 percentages in a couple of minutes).  Set it to 1.0 for the
paper's full 100,000-account / 50,000-operation configuration.

Virtual-time throughput (the paper reproduction) is attached to each
benchmark as ``extra_info``; pytest-benchmark's own timings measure the
wall-clock cost of this Python implementation and are reported for
transparency only.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.tpcb import TPCBConfig


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@pytest.fixture(scope="session")
def workload_config() -> TPCBConfig:
    return TPCBConfig().scaled(bench_scale())
