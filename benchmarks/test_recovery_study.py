"""Recovery study (Section 4 has no table; this characterizes the algorithms).

Measures the three recovery paths on a TPC-B database:

* normal restart recovery after a clean crash;
* delete-transaction recovery after a failed audit, with the paper's
  correctness conditions verified by the history oracles;
* cache recovery (in-place region repair) after a precheck failure.
"""

from __future__ import annotations

import shutil

import pytest

from repro import Database, DBConfig, FaultInjector
from repro.bench.tpcb import TPCBConfig, TPCBWorkload, build_tpcb_database, load_tpcb
from repro.recovery.cache_recovery import repair_regions
from repro.recovery.history import check_conflict_consistent, check_view_consistent

WORKLOAD = TPCBConfig(
    accounts=500, tellers=100, branches=10, operations=200, ops_per_txn=20
)


def fresh(tmp_path, sub, scheme, record_history=False):
    path = tmp_path / sub
    if path.exists():
        shutil.rmtree(path)
    config = DBConfig(dir=str(path), scheme=scheme, record_history=record_history)
    db = build_tpcb_database(config, WORKLOAD)
    load_tpcb(db, WORKLOAD)
    db.checkpoint()
    return db


def test_normal_restart_recovery(benchmark, tmp_path):
    db = fresh(tmp_path, "normal", "data_cw")
    TPCBWorkload(db, WORKLOAD).run()
    db.crash()

    def recover():
        db2, report = Database.recover(db.config)
        db2.close()
        return report

    report = benchmark.pedantic(recover, rounds=1, iterations=1)
    assert report.mode == "normal"
    assert report.redo_applied > 0
    benchmark.extra_info["redo_applied"] = report.redo_applied


def test_delete_transaction_recovery(benchmark, tmp_path):
    db = fresh(tmp_path, "delete", "cw_read_logging", record_history=True)
    runner = TPCBWorkload(db, WORKLOAD)
    runner.run(100)
    # Corrupt a branch balance: every operation updates some branch, so
    # with 10 branches the corruption is all but guaranteed to be carried.
    FaultInjector(db, seed=21).wild_write(
        db.table("branch").record_address(3) + 8, 8
    )
    runner.run(100)
    report = db.audit()
    assert not report.clean
    history = db.history
    db.crash_with_corruption(report)

    def recover():
        db2, recovery = Database.recover(db.config)
        db2.close()
        return recovery

    recovery = benchmark.pedantic(recover, rounds=1, iterations=1)
    assert recovery.mode == "delete-transaction-view"
    assert recovery.deleted_set, "the corrupt branch must have been carried"
    assert recovery.writes_suppressed > 0
    assert check_conflict_consistent(history, recovery.deleted_set) == []
    assert check_view_consistent(history, recovery.deleted_set) == []
    benchmark.extra_info["deleted_committed"] = len(recovery.deleted_set)
    benchmark.extra_info["writes_suppressed"] = recovery.writes_suppressed
    print(
        f"\ndelete-transaction recovery: {len(recovery.deleted_set)} committed "
        f"transaction(s) deleted, {recovery.writes_suppressed} writes suppressed"
    )


def test_cache_recovery(benchmark, tmp_path):
    from repro.errors import CorruptionDetected

    db = fresh(tmp_path, "cache", "precheck")
    TPCBWorkload(db, WORKLOAD).run(50)
    account = db.table("account")
    # Distinct words: a self-canceling pattern (e.g. 8 x 0xff over zeros)
    # would XOR-fold to a zero delta and evade the codeword entirely.
    db.memory.poke(account.record_address(7) + 16, b"\xde\xad\xbe\xef\x01\x02\x03\x04")
    txn = db.begin()
    with pytest.raises(CorruptionDetected) as exc:
        account.read(txn, 7)
    db.abort(txn)

    def repair():
        return repair_regions(db, exc.value.region_ids)

    repaired = benchmark.pedantic(repair, rounds=1, iterations=1)
    assert repaired == len(exc.value.region_ids)
    txn = db.begin()
    account.read(txn, 7)  # readable again, no crash ever happened
    db.commit(txn)
    assert db.audit().clean
    db.close()
